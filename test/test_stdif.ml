(* Unit tests of the STD-IF adapters (§2.2): message framing over the TCP
   byte stream, fragmentation/reassembly over bounded MBX messages, and the
   failure surface both present uniformly. *)

open Ntcs
open Ntcs_sim
open Ntcs_ipcs

type rig = {
  world : World.t;
  reg : Registry.t;
  m1 : Machine.t;
  m2 : Machine.t;
  a1 : Machine.t;
  a2 : Machine.t;
}

let make_rig () =
  let world = World.create ~config:{ World.Config.default with World.Config.seed = 23 } () in
  let lan = World.add_net world ~name:"lan" Net.Tcp_lan () in
  let ring = World.add_net world ~name:"ring" Net.Mbx_ring () in
  let m1 = World.add_machine world ~name:"m1" Machine.Sun3 () in
  let m2 = World.add_machine world ~name:"m2" Machine.Sun3 () in
  let a1 = World.add_machine world ~name:"a1" Machine.Apollo () in
  let a2 = World.add_machine world ~name:"a2" Machine.Apollo () in
  World.attach world m1 lan;
  World.attach world m2 lan;
  World.attach world a1 ring;
  World.attach world a2 ring;
  { world; reg = Registry.create world; m1; m2; a1; a2 }

(* Build a connected (client_lvc, server_lvc) pair over the chosen backend. *)
let tcp_pair rig k =
  ignore
    (World.spawn rig.world ~machine:rig.m1 ~name:"server" (fun () ->
         match Std_if.listen_tcp ~port:7000 rig.reg ~machine:rig.m1 with
         | Error _ -> Alcotest.fail "listen"
         | Ok acceptor -> (
           match acceptor.Std_if.accept () with
           | Error _ -> Alcotest.fail "accept"
           | Ok server_lvc -> k `Server server_lvc)));
  ignore
    (World.spawn rig.world ~machine:rig.m2 ~name:"client" (fun () ->
         match
           Std_if.connect rig.reg ~machine:rig.m2 ~dst:(Phys_addr.tcp ~host:"m1" ~port:7000)
         with
         | Error _ -> Alcotest.fail "connect"
         | Ok client_lvc -> k `Client client_lvc))

let mbx_pair rig k =
  ignore
    (World.spawn rig.world ~machine:rig.a1 ~name:"server" (fun () ->
         match Std_if.listen_mbx ~path:"//a1/mbx/t" rig.reg ~machine:rig.a1 ~hint:"t" with
         | Error _ -> Alcotest.fail "listen"
         | Ok acceptor -> (
           match acceptor.Std_if.accept () with
           | Error _ -> Alcotest.fail "accept"
           | Ok server_lvc -> k `Server server_lvc)));
  ignore
    (World.spawn rig.world ~machine:rig.a2 ~name:"client" (fun () ->
         Sched.sleep (World.sched rig.world) 1000;
         match
           Std_if.connect rig.reg ~machine:rig.a2 ~dst:(Phys_addr.mbx ~path:"//a1/mbx/t")
         with
         | Error _ -> Alcotest.fail "connect"
         | Ok client_lvc -> k `Client client_lvc))

(* Send a list of messages one way; expect them back intact and in order. *)
let roundtrip_case make_pair messages () =
  let rig = make_rig () in
  let received = ref [] in
  let dispatch role lvc =
    match role with
    | `Client ->
      List.iter
        (fun m ->
          match lvc.Std_if.send_msg (Bytes.of_string m) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "send: %s" (Ipcs_error.to_string e))
        messages
    | `Server ->
      for _ = 1 to List.length messages do
        match lvc.Std_if.recv_msg ~timeout_us:20_000_000 () with
        | Ok m -> received := Bytes.to_string m :: !received
        | Error e -> Alcotest.failf "recv: %s" (Ipcs_error.to_string e)
      done
  in
  make_pair rig dispatch;
  World.run rig.world;
  Alcotest.(check (list string)) "messages intact and ordered" messages (List.rev !received)

let mixed_messages =
  [ ""; "x"; String.make 100 'a'; String.make 5000 'b'; "tail" ]

(* Large enough to require several MBX fragments / many TCP segments. *)
let big_messages = [ String.make 100_000 'z'; String.make 70_001 'q' ]

let test_tcp_roundtrip = roundtrip_case tcp_pair mixed_messages
let test_tcp_large = roundtrip_case tcp_pair big_messages
let test_mbx_roundtrip = roundtrip_case mbx_pair mixed_messages
let test_mbx_large = roundtrip_case mbx_pair big_messages

let test_mbx_fragment_arithmetic () =
  Alcotest.(check int) "header accounted" Ipcs_mbx.max_message_size
    (Std_if.mbx_frag_payload + Std_if.mbx_frag_header);
  Alcotest.(check bool) "payload positive" true (Std_if.mbx_frag_payload > 0)

let test_close_surfaces_uniformly () =
  (* Both backends: close on one side -> recv on the other returns Closed. *)
  let check_backend make_pair =
    let rig = make_rig () in
    let result = ref None in
    let dispatch role lvc =
      match role with
      | `Client -> lvc.Std_if.close ()
      | `Server -> result := Some (lvc.Std_if.recv_msg ~timeout_us:10_000_000 ())
    in
    make_pair rig dispatch;
    World.run rig.world;
    match !result with
    | Some (Error Ipcs_error.Closed) -> ()
    | Some (Error e) -> Alcotest.failf "wrong error: %s" (Ipcs_error.to_string e)
    | Some (Ok _) -> Alcotest.fail "got data from a closed circuit"
    | None -> Alcotest.fail "server never ran"
  in
  check_backend tcp_pair;
  check_backend mbx_pair

let test_interleaved_bidirectional () =
  (* Full duplex: both ends talk simultaneously; no cross-contamination. *)
  let rig = make_rig () in
  let got_at_server = ref [] and got_at_client = ref [] in
  let dispatch role lvc =
    match role with
    | `Client ->
      for i = 1 to 5 do
        ignore (lvc.Std_if.send_msg (Bytes.of_string (Printf.sprintf "c%d" i)));
        match lvc.Std_if.recv_msg ~timeout_us:10_000_000 () with
        | Ok m -> got_at_client := Bytes.to_string m :: !got_at_client
        | Error _ -> ()
      done
    | `Server ->
      for i = 1 to 5 do
        ignore (lvc.Std_if.send_msg (Bytes.of_string (Printf.sprintf "s%d" i)));
        match lvc.Std_if.recv_msg ~timeout_us:10_000_000 () with
        | Ok m -> got_at_server := Bytes.to_string m :: !got_at_server
        | Error _ -> ()
      done
  in
  tcp_pair rig dispatch;
  World.run rig.world;
  Alcotest.(check (list string)) "server got client's stream" [ "c1"; "c2"; "c3"; "c4"; "c5" ]
    (List.rev !got_at_server);
  Alcotest.(check (list string)) "client got server's stream" [ "s1"; "s2"; "s3"; "s4"; "s5" ]
    (List.rev !got_at_client)

let () =
  Alcotest.run "std_if"
    [
      ( "framing",
        [
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "tcp large" `Quick test_tcp_large;
          Alcotest.test_case "mbx roundtrip" `Quick test_mbx_roundtrip;
          Alcotest.test_case "mbx large (fragmentation)" `Quick test_mbx_large;
          Alcotest.test_case "fragment arithmetic" `Quick test_mbx_fragment_arithmetic;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "close surfaces uniformly" `Quick test_close_surfaces_uniformly;
          Alcotest.test_case "bidirectional" `Quick test_interleaved_bidirectional;
        ] );
    ]
