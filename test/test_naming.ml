(* The naming service (§3): lookup semantics, attribute-based naming,
   forwarding logic, cache-only operation after name-server removal (E1),
   and replicated name servers with failover (E10, the §7 successor). *)

open Ntcs
open Helpers

let test_newest_wins_on_duplicate_name () =
  let c = lan_cluster () in
  Cluster.settle c;
  let first = ref None and second = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"gen0" (fun node ->
         let commod = bind_exn node ~name:"dup" in
         first := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 60_000_000));
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"gen1" (fun node ->
         let commod = bind_exn node ~name:"dup" in
         second := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 60_000_000));
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        check_ok "locate" (Ali_layer.locate commod "dup"))
  in
  Cluster.settle c;
  (match (!second, result ()) with
   | Some expected, got -> Alcotest.(check bool) "newest instance wins" true (Addr.equal expected got)
   | None, _ -> Alcotest.fail "second instance missing")

let test_attribute_lookup () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"idx0" ~attrs:[ ("service", "index"); ("part", "0") ];
  spawn_echo c ~machine:"sun2" ~name:"idx1" ~attrs:[ ("service", "index"); ("part", "1") ];
  spawn_echo c ~machine:"sun1" ~name:"doc0" ~attrs:[ ("service", "docs") ];
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let all = check_ok "by service" (Ali_layer.locate_attrs commod [ ("service", "index") ]) in
        let one =
          check_ok "by two attrs"
            (Ali_layer.locate_attrs commod [ ("service", "index"); ("part", "1") ])
        in
        let none = check_ok "no match" (Ali_layer.locate_attrs commod [ ("service", "nope") ]) in
        (List.length all, List.length one, List.length none))
  in
  Cluster.settle c;
  Alcotest.(check (triple int int int)) "attr matching" (2, 1, 0) (result ())

let test_locate_entry_details () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc" ~attrs:[ ("service", "echo") ];
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        check_ok "resolve" (Ali_layer.locate_entry commod addr))
  in
  Cluster.settle c;
  let entry = result () in
  Alcotest.(check string) "name" "svc" entry.Ns_proto.e_name;
  Alcotest.(check bool) "alive" true entry.Ns_proto.e_alive;
  Alcotest.(check bool) "has phys" true (entry.Ns_proto.e_phys <> []);
  Alcotest.(check (option string)) "attrs stored" (Some "echo")
    (List.assoc_opt "service" entry.Ns_proto.e_attrs)

let test_forward_query_semantics () =
  let c = lan_cluster () in
  Cluster.settle c;
  let ns = Cluster.primary_ns c in
  (* A long-lived module and a dead one with a newer replacement. *)
  let alive_addr = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"alive" (fun node ->
         let commod = bind_exn node ~name:"alive-svc" in
         alive_addr := Some (Commod.my_addr commod);
         let rec loop () =
           ignore (Ali_layer.receive commod);
           loop ()
         in
         loop ()));
  let dead_addr = ref None in
  let dead_pid =
    Cluster.spawn c ~machine:"sun1" ~name:"old-gen" (fun node ->
        let commod = bind_exn node ~name:"reborn-svc" in
        dead_addr := Some (Commod.my_addr commod);
        Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) dead_pid;
  Cluster.settle c;
  let replacement = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"new-gen" (fun node ->
         let commod = bind_exn node ~name:"reborn-svc" in
         replacement := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000));
  Cluster.settle c;
  (* Query the server database through a fresh client's NSP path, by sending
     Forward requests directly. *)
  let results =
    in_process c ~machine:"vax1" ~name:"prober" (fun node ->
        let commod = bind_exn node ~name:"prober" in
        let nsp = Commod.nsp_exn commod in
        let f_alive = Nsp_layer.forward_query nsp (Option.get !alive_addr) in
        let f_dead = Nsp_layer.forward_query nsp (Option.get !dead_addr) in
        let f_unknown = Nsp_layer.forward_query nsp (Addr.unique ~server_id:77 ~value:9) in
        (f_alive, f_dead, f_unknown))
  in
  Cluster.settle ~dt:10_000_000 c;
  let f_alive, f_dead, f_unknown = results () in
  Alcotest.(check bool) "alive module: no forward" true (f_alive = Ok None);
  (match f_dead with
   | Ok (Some fresh) ->
     Alcotest.(check bool) "dead module forwards to replacement" true
       (Addr.equal fresh (Option.get !replacement))
   | Ok None -> Alcotest.fail "dead module reported alive"
   | Error e -> Alcotest.failf "forward: %s" (Errors.to_string e));
  Alcotest.(check bool) "unknown address errors" true
    (match f_unknown with Error Errors.Unknown_address -> true | _ -> false);
  Alcotest.(check bool) "ns db consistent" true (Name_server.db_size ns >= 4)

let test_forward_no_replacement_is_dead () =
  let c = lan_cluster () in
  Cluster.settle c;
  let gone_addr = ref None in
  let pid =
    Cluster.spawn c ~machine:"sun1" ~name:"goner" (fun node ->
        let commod = bind_exn node ~name:"goner" in
        gone_addr := Some (Commod.my_addr commod);
        Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) pid;
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"prober" (fun node ->
        let commod = bind_exn node ~name:"prober" in
        Nsp_layer.forward_query (Commod.nsp_exn commod) (Option.get !gone_addr))
  in
  Cluster.settle ~dt:10_000_000 c;
  check_err "no replacement located" Errors.Destination_dead (result ())

let test_forward_by_service_attribute () =
  (* §3.5: "then looking for a similar name in a newer module. With our new
     attribute-based naming, this is more involved." A replacement with a
     *different* logical name but the same service attribute still counts as
     similar. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let old_addr = ref None in
  let pid =
    Cluster.spawn c ~machine:"sun1" ~name:"old" (fun node ->
        match Commod.bind node ~name:"searcher-v1" ~attrs:[ ("service", "search") ] with
        | Error _ -> ()
        | Ok commod ->
          old_addr := Some (Commod.my_addr commod);
          Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) pid;
  Cluster.settle c;
  let new_addr = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"new" (fun node ->
         match Commod.bind node ~name:"searcher-v2" ~attrs:[ ("service", "search") ] with
         | Error _ -> ()
         | Ok commod ->
           new_addr := Some (Commod.my_addr commod);
           Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000));
  Cluster.settle c;
  let fwd = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"prober" (fun node ->
         let commod = bind_exn node ~name:"prober" in
         fwd := Some (Nsp_layer.forward_query (Commod.nsp_exn commod) (Option.get !old_addr))));
  Cluster.settle ~dt:10_000_000 c;
  match !fwd with
  | Some (Ok (Some fresh)) ->
    Alcotest.(check bool) "forwarded across names via attribute" true
      (Addr.equal fresh (Option.get !new_addr))
  | Some (Ok None) -> Alcotest.fail "old module reported alive"
  | Some (Error e) -> Alcotest.failf "forward failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "prober never ran"

let test_ns_removal_with_warm_caches () =
  (* E1: "once all necessary addresses have been resolved ... the Name
     Server can be removed with no consequence, unless the system is
     reconfigured." *)
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let phase2 = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate while NS up" (Ali_layer.locate commod "svc") in
         ignore (check_ok "warm" (Ali_layer.send_sync commod ~dst:addr (raw "warm")));
         (* Wait past the NS kill, then keep talking. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         let after_kill = Ali_layer.send_sync commod ~dst:addr (raw "after-kill") in
         let new_locate = Ali_layer.locate commod "never-resolved" in
         phase2 := Some (after_kill, new_locate)));
  Cluster.settle c;
  (* Remove the name server. *)
  Name_server.stop (Cluster.primary_ns c);
  Cluster.crash c "vax1";
  Cluster.settle ~dt:20_000_000 c;
  match !phase2 with
  | None -> Alcotest.fail "client did not finish"
  | Some (after_kill, new_locate) ->
    (match after_kill with
     | Ok env -> Alcotest.(check string) "conversation survives NS removal" "echo:after-kill" (body env)
     | Error e -> Alcotest.failf "send after NS removal failed: %s" (Errors.to_string e));
    Alcotest.(check bool) "new resolution fails without NS" true
      (match new_locate with Error Errors.Name_service_unavailable -> true | _ -> false)

let replicated_cluster () =
  Cluster.build
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("vax2", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
      ]
    ~ns:"vax1" ~ns_replicas:[ "vax2" ] ()

let test_replication_propagates () =
  let c = replicated_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  (* Both servers should know the registration (pushed asynchronously). *)
  let dbs = List.map Name_server.db_size (Cluster.name_servers c) in
  Alcotest.(check int) "two servers" 2 (List.length dbs);
  List.iter (fun n -> Alcotest.(check bool) "entry propagated" true (n >= 2)) dbs

let test_replica_failover () =
  (* E10: primary dies; lookups keep working through the replica. *)
  let c = replicated_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let result = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         (* Outlive the primary's crash, then locate something never cached. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         result := Some (Ali_layer.locate commod "svc")));
  Cluster.settle c;
  Cluster.crash c "vax1";
  Cluster.settle ~dt:30_000_000 c;
  match !result with
  | None -> Alcotest.fail "client did not finish"
  | Some r ->
    let addr = check_ok "lookup via replica" r in
    Alcotest.(check bool) "resolved" true (Addr.is_unique addr)

let test_registration_after_primary_death () =
  let c = replicated_cluster () in
  Cluster.settle c;
  Cluster.crash c "vax1";
  Cluster.settle c;
  (* New module registers through the replica; the UAdd carries the
     replica's server id so it cannot collide with primary-assigned ones. *)
  let got = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"late" (fun node ->
         match Commod.bind node ~name:"late-svc" with
         | Ok commod -> got := Some (Commod.my_addr commod)
         | Error e -> Alcotest.failf "bind via replica failed: %s" (Errors.to_string e)));
  Cluster.settle ~dt:30_000_000 c;
  match !got with
  | Some addr -> Alcotest.(check bool) "registered via replica" true (Addr.is_unique addr)
  | None -> Alcotest.fail "registration did not complete"

let () =
  Alcotest.run "naming"
    [
      ( "service",
        [
          Alcotest.test_case "newest wins" `Quick test_newest_wins_on_duplicate_name;
          Alcotest.test_case "attribute lookup" `Quick test_attribute_lookup;
          Alcotest.test_case "entry details" `Quick test_locate_entry_details;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "forward semantics" `Quick test_forward_query_semantics;
          Alcotest.test_case "no replacement" `Quick test_forward_no_replacement_is_dead;
          Alcotest.test_case "forward by service attribute" `Quick
            test_forward_by_service_attribute;
        ] );
      ( "removal (E1)",
        [ Alcotest.test_case "warm caches survive NS removal" `Quick
            test_ns_removal_with_warm_caches ] );
      ( "replication (E10)",
        [
          Alcotest.test_case "writes propagate" `Quick test_replication_propagates;
          Alcotest.test_case "failover lookup" `Quick test_replica_failover;
          Alcotest.test_case "register via replica" `Quick test_registration_after_primary_death;
        ] );
    ]
