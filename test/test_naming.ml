(* The naming service (§3): lookup semantics, attribute-based naming,
   forwarding logic, cache-only operation after name-server removal (E1),
   and replicated name servers with failover (E10, the §7 successor). *)

open Ntcs
open Helpers

let test_newest_wins_on_duplicate_name () =
  let c = lan_cluster () in
  Cluster.settle c;
  let first = ref None and second = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"gen0" (fun node ->
         let commod = bind_exn node ~name:"dup" in
         first := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 60_000_000));
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"gen1" (fun node ->
         let commod = bind_exn node ~name:"dup" in
         second := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 60_000_000));
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        check_ok "locate" (Ali_layer.locate commod "dup"))
  in
  Cluster.settle c;
  (match (!second, result ()) with
   | Some expected, got -> Alcotest.(check bool) "newest instance wins" true (Addr.equal expected got)
   | None, _ -> Alcotest.fail "second instance missing")

let test_attribute_lookup () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"idx0" ~attrs:[ ("service", "index"); ("part", "0") ];
  spawn_echo c ~machine:"sun2" ~name:"idx1" ~attrs:[ ("service", "index"); ("part", "1") ];
  spawn_echo c ~machine:"sun1" ~name:"doc0" ~attrs:[ ("service", "docs") ];
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let all = check_ok "by service" (Ali_layer.locate_attrs commod [ ("service", "index") ]) in
        let one =
          check_ok "by two attrs"
            (Ali_layer.locate_attrs commod [ ("service", "index"); ("part", "1") ])
        in
        let none = check_ok "no match" (Ali_layer.locate_attrs commod [ ("service", "nope") ]) in
        (List.length all, List.length one, List.length none))
  in
  Cluster.settle c;
  Alcotest.(check (triple int int int)) "attr matching" (2, 1, 0) (result ())

let test_locate_entry_details () =
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc" ~attrs:[ ("service", "echo") ];
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
        check_ok "resolve" (Ali_layer.locate_entry commod addr))
  in
  Cluster.settle c;
  let entry = result () in
  Alcotest.(check string) "name" "svc" entry.Ns_proto.e_name;
  Alcotest.(check bool) "alive" true entry.Ns_proto.e_alive;
  Alcotest.(check bool) "has phys" true (entry.Ns_proto.e_phys <> []);
  Alcotest.(check (option string)) "attrs stored" (Some "echo")
    (List.assoc_opt "service" entry.Ns_proto.e_attrs)

let test_forward_query_semantics () =
  let c = lan_cluster () in
  Cluster.settle c;
  let ns = Cluster.primary_ns c in
  (* A long-lived module and a dead one with a newer replacement. *)
  let alive_addr = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"alive" (fun node ->
         let commod = bind_exn node ~name:"alive-svc" in
         alive_addr := Some (Commod.my_addr commod);
         let rec loop () =
           ignore (Ali_layer.receive commod);
           loop ()
         in
         loop ()));
  let dead_addr = ref None in
  let dead_pid =
    Cluster.spawn c ~machine:"sun1" ~name:"old-gen" (fun node ->
        let commod = bind_exn node ~name:"reborn-svc" in
        dead_addr := Some (Commod.my_addr commod);
        Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) dead_pid;
  Cluster.settle c;
  let replacement = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"new-gen" (fun node ->
         let commod = bind_exn node ~name:"reborn-svc" in
         replacement := Some (Commod.my_addr commod);
         Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000));
  Cluster.settle c;
  (* Query the server database through a fresh client's NSP path, by sending
     Forward requests directly. *)
  let results =
    in_process c ~machine:"vax1" ~name:"prober" (fun node ->
        let commod = bind_exn node ~name:"prober" in
        let nsp = Commod.nsp_exn commod in
        let f_alive = Nsp_layer.forward_query nsp (Option.get !alive_addr) in
        let f_dead = Nsp_layer.forward_query nsp (Option.get !dead_addr) in
        let f_unknown = Nsp_layer.forward_query nsp (Addr.unique ~server_id:77 ~value:9) in
        (f_alive, f_dead, f_unknown))
  in
  Cluster.settle ~dt:10_000_000 c;
  let f_alive, f_dead, f_unknown = results () in
  Alcotest.(check bool) "alive module: no forward" true (f_alive = Ok None);
  (match f_dead with
   | Ok (Some fresh) ->
     Alcotest.(check bool) "dead module forwards to replacement" true
       (Addr.equal fresh (Option.get !replacement))
   | Ok None -> Alcotest.fail "dead module reported alive"
   | Error e -> Alcotest.failf "forward: %s" (Errors.to_string e));
  Alcotest.(check bool) "unknown address errors" true
    (match f_unknown with Error Errors.Unknown_address -> true | _ -> false);
  Alcotest.(check bool) "ns db consistent" true (Name_server.db_size ns >= 4)

let test_forward_no_replacement_is_dead () =
  let c = lan_cluster () in
  Cluster.settle c;
  let gone_addr = ref None in
  let pid =
    Cluster.spawn c ~machine:"sun1" ~name:"goner" (fun node ->
        let commod = bind_exn node ~name:"goner" in
        gone_addr := Some (Commod.my_addr commod);
        Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) pid;
  Cluster.settle c;
  let result =
    in_process c ~machine:"vax1" ~name:"prober" (fun node ->
        let commod = bind_exn node ~name:"prober" in
        Nsp_layer.forward_query (Commod.nsp_exn commod) (Option.get !gone_addr))
  in
  Cluster.settle ~dt:10_000_000 c;
  check_err "no replacement located" Errors.Destination_dead (result ())

let test_forward_by_service_attribute () =
  (* §3.5: "then looking for a similar name in a newer module. With our new
     attribute-based naming, this is more involved." A replacement with a
     *different* logical name but the same service attribute still counts as
     similar. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let old_addr = ref None in
  let pid =
    Cluster.spawn c ~machine:"sun1" ~name:"old" (fun node ->
        match Commod.bind node ~name:"searcher-v1" ~attrs:[ ("service", "search") ] with
        | Error _ -> ()
        | Ok commod ->
          old_addr := Some (Commod.my_addr commod);
          Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000)
  in
  Cluster.settle c;
  Ntcs_sim.Sched.kill (Cluster.sched c) pid;
  Cluster.settle c;
  let new_addr = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"new" (fun node ->
         match Commod.bind node ~name:"searcher-v2" ~attrs:[ ("service", "search") ] with
         | Error _ -> ()
         | Ok commod ->
           new_addr := Some (Commod.my_addr commod);
           Ntcs_sim.Sched.sleep (Node.sched node) 120_000_000));
  Cluster.settle c;
  let fwd = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"prober" (fun node ->
         let commod = bind_exn node ~name:"prober" in
         fwd := Some (Nsp_layer.forward_query (Commod.nsp_exn commod) (Option.get !old_addr))));
  Cluster.settle ~dt:10_000_000 c;
  match !fwd with
  | Some (Ok (Some fresh)) ->
    Alcotest.(check bool) "forwarded across names via attribute" true
      (Addr.equal fresh (Option.get !new_addr))
  | Some (Ok None) -> Alcotest.fail "old module reported alive"
  | Some (Error e) -> Alcotest.failf "forward failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "prober never ran"

let test_ns_removal_with_warm_caches () =
  (* E1: "once all necessary addresses have been resolved ... the Name
     Server can be removed with no consequence, unless the system is
     reconfigured." *)
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let phase2 = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate while NS up" (Ali_layer.locate commod "svc") in
         ignore (check_ok "warm" (Ali_layer.send_sync commod ~dst:addr (raw "warm")));
         (* Wait past the NS kill, then keep talking. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         let after_kill = Ali_layer.send_sync commod ~dst:addr (raw "after-kill") in
         let new_locate = Ali_layer.locate commod "never-resolved" in
         phase2 := Some (after_kill, new_locate)));
  Cluster.settle c;
  (* Remove the name server. *)
  Name_server.stop (Cluster.primary_ns c);
  Cluster.crash c "vax1";
  Cluster.settle ~dt:20_000_000 c;
  match !phase2 with
  | None -> Alcotest.fail "client did not finish"
  | Some (after_kill, new_locate) ->
    (match after_kill with
     | Ok env -> Alcotest.(check string) "conversation survives NS removal" "echo:after-kill" (body env)
     | Error e -> Alcotest.failf "send after NS removal failed: %s" (Errors.to_string e));
    Alcotest.(check bool) "new resolution fails without NS" true
      (match new_locate with Error Errors.Name_service_unavailable -> true | _ -> false)

let replicated_cluster () =
  Cluster.build
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("vax2", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
      ]
    ~ns:"vax1" ~ns_replicas:[ "vax2" ] ()

let test_replication_propagates () =
  let c = replicated_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  (* Both servers should know the registration (pushed asynchronously). *)
  let dbs = List.map Name_server.db_size (Cluster.name_servers c) in
  Alcotest.(check int) "two servers" 2 (List.length dbs);
  List.iter (fun n -> Alcotest.(check bool) "entry propagated" true (n >= 2)) dbs

let test_replica_failover () =
  (* E10: primary dies; lookups keep working through the replica. *)
  let c = replicated_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let result = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         (* Outlive the primary's crash, then locate something never cached. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
         result := Some (Ali_layer.locate commod "svc")));
  Cluster.settle c;
  Cluster.crash c "vax1";
  Cluster.settle ~dt:30_000_000 c;
  match !result with
  | None -> Alcotest.fail "client did not finish"
  | Some r ->
    let addr = check_ok "lookup via replica" r in
    Alcotest.(check bool) "resolved" true (Addr.is_unique addr)

let test_registration_after_primary_death () =
  let c = replicated_cluster () in
  Cluster.settle c;
  Cluster.crash c "vax1";
  Cluster.settle c;
  (* New module registers through the replica; the UAdd carries the
     replica's server id so it cannot collide with primary-assigned ones. *)
  let got = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun1" ~name:"late" (fun node ->
         match Commod.bind node ~name:"late-svc" with
         | Ok commod -> got := Some (Commod.my_addr commod)
         | Error e -> Alcotest.failf "bind via replica failed: %s" (Errors.to_string e)));
  Cluster.settle ~dt:30_000_000 c;
  match !got with
  | Some addr -> Alcotest.(check bool) "registered via replica" true (Addr.is_unique addr)
  | None -> Alcotest.fail "registration did not complete"

(* --- The sharded naming plane (DESIGN.md §15) ----------------------- *)

module Shard_map = Ntcs_naming.Shard_map
module Ns_cache = Ntcs_naming.Ns_cache

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_shard_map_basics () =
  let m = Shard_map.make ~version:3 [| "a"; "b"; "c"; "d" |] in
  Alcotest.(check int) "version" 3 (Shard_map.version m);
  Alcotest.(check int) "nshards" 4 (Shard_map.nshards m);
  Alcotest.(check (list (pair int string)))
    "bindings in ascending shard order"
    [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]
    (Shard_map.bindings m);
  Alcotest.(check string) "owner" "c" (Shard_map.owner m 2);
  Alcotest.(check bool) "owner out of range raises" true
    (raises_invalid (fun () -> Shard_map.owner m 4));
  Alcotest.(check bool) "empty owner array raises" true
    (raises_invalid (fun () -> Shard_map.make ~version:1 ([||] : int array)));
  Alcotest.(check bool) "non-positive version raises" true
    (raises_invalid (fun () -> Shard_map.make ~version:0 [| "x" |]))

let test_shard_distribution () =
  (* The FNV map must not be degenerate: over a batch of realistic names,
     every shard owns a real share. Deterministic — the hash is pinned. *)
  let m = Shard_map.make ~version:1 [| 0; 1; 2; 3 |] in
  let counts = Array.make 4 0 in
  for i = 0 to 3999 do
    let sh = Shard_map.shard_of_name m (Printf.sprintf "name-%04d" i) in
    counts.(sh) <- counts.(sh) + 1
  done;
  Array.iteri
    (fun sh n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns a fair share (%d/4000)" sh n)
        true (n > 400))
    counts

let shard_map_props =
  let m = Shard_map.make ~version:1 [| 0; 1; 2; 3 |] in
  [
    QCheck.Test.make ~name:"shard_of_name: stable, in range, owner-consistent"
      ~count:300
      QCheck.(string_gen_of_size Gen.(0 -- 40) Gen.printable)
      (fun s ->
        let h = Shard_map.hash_name s in
        let sh = Shard_map.shard_of_name m s in
        h >= 0
        && h < 1 lsl 30
        && h = Shard_map.hash_name s
        && sh = h mod 4
        && Shard_map.owner_of_name m s = Shard_map.owner m sh);
  ]

let test_cache_hit_miss_ttl () =
  let c = Ns_cache.create ~capacity:8 ~nshards:4 in
  Alcotest.(check bool) "empty cache misses" true
    (Ns_cache.find c ~now:0 "k" = Ns_cache.Miss);
  Ns_cache.store c "k" ~value:41 ~shard:2 ~gen:3 ~expiry:1_000;
  (match Ns_cache.find c ~now:500 "k" with
   | Ns_cache.Hit (41, 2, 3) -> ()
   | _ -> Alcotest.fail "expected a fresh hit carrying shard 2 gen 3");
  (* TTL expiry is an ordinary miss — nothing was proved wrong — and the
     dead entry is evicted on the touch. *)
  Alcotest.(check bool) "expired entry misses" true
    (Ns_cache.find c ~now:2_000 "k" = Ns_cache.Miss);
  Alcotest.(check int) "expired entry evicted" 0 (Ns_cache.length c);
  Alcotest.(check bool) "stats count hits and misses" true
    (Ns_cache.stats c = (1, 0, 2))

let test_cache_lazy_invalidation () =
  let c = Ns_cache.create ~capacity:8 ~nshards:4 in
  Ns_cache.store c "k" ~value:"old" ~shard:1 ~gen:2 ~expiry:max_int;
  Ns_cache.store c "other" ~value:"fine" ~shard:0 ~gen:1 ~expiry:max_int;
  (* The floor raise retires shard 1's entry lazily: it stays resident and
     surfaces as Stale on its next touch, which evicts it — the caller must
     then re-look-up. *)
  Alcotest.(check int) "one resident entry invalidated" 1
    (Ns_cache.note_generation c ~shard:1 ~gen:7);
  Alcotest.(check int) "still resident until touched" 2 (Ns_cache.length c);
  Alcotest.(check int) "floor raised" 7 (Ns_cache.floor c ~shard:1);
  (match Ns_cache.find c ~now:0 "k" with
   | Ns_cache.Stale ("old", 1, 2) -> ()
   | _ -> Alcotest.fail "expected a stale hit for the retired entry");
  Alcotest.(check bool) "stale touch evicted it" true
    (Ns_cache.find c ~now:0 "k" = Ns_cache.Miss);
  (match Ns_cache.find c ~now:0 "other" with
   | Ns_cache.Hit ("fine", 0, 1) -> ()
   | _ -> Alcotest.fail "other shard's entry must be untouched");
  Alcotest.(check int) "non-increasing observation is a no-op" 0
    (Ns_cache.note_generation c ~shard:1 ~gen:7);
  Alcotest.(check int) "out-of-range shard is a no-op" 0
    (Ns_cache.note_generation c ~shard:9 ~gen:3);
  Alcotest.(check int) "out-of-range floor reads 0" 0 (Ns_cache.floor c ~shard:9);
  Alcotest.(check bool) "one stale counted" true
    (match Ns_cache.stats c with _, 1, _ -> true | _ -> false)

let test_cache_store_clamps_to_floor () =
  let c = Ns_cache.create ~capacity:8 ~nshards:2 in
  ignore (Ns_cache.note_generation c ~shard:0 ~gen:5);
  (* A fresh authoritative answer whose server counter restarted below the
     observed floor is still fresh *now*: the stored generation is clamped
     up so the entry cannot be born stale. *)
  Ns_cache.store c "k" ~value:() ~shard:0 ~gen:2 ~expiry:max_int;
  match Ns_cache.find c ~now:0 "k" with
  | Ns_cache.Hit ((), 0, 5) -> ()
  | _ -> Alcotest.fail "expected the stored generation clamped up to the floor"

let test_cache_recency_and_eviction () =
  let c = Ns_cache.create ~capacity:2 ~nshards:1 in
  Ns_cache.store c "a" ~value:1 ~shard:0 ~gen:1 ~expiry:max_int;
  Ns_cache.store c "b" ~value:2 ~shard:0 ~gen:1 ~expiry:max_int;
  Ns_cache.store c "c" ~value:3 ~shard:0 ~gen:1 ~expiry:max_int;
  Alcotest.(check int) "capacity bound holds" 2 (Ns_cache.length c);
  let order = ref [] in
  Ns_cache.iter c (fun k _ ~shard:_ ~gen:_ -> order := k :: !order);
  Alcotest.(check (list string)) "MRU first, LRU evicted" [ "c"; "b" ]
    (List.rev !order);
  Ns_cache.remove c "b";
  Alcotest.(check bool) "removed" true (Ns_cache.find c ~now:0 "b" = Ns_cache.Miss);
  Ns_cache.store c "d" ~value:4 ~shard:0 ~gen:1 ~expiry:max_int;
  Alcotest.(check int) "predicate eviction count" 1
    (Ns_cache.invalidate_if c (fun _ v -> v > 3));
  Alcotest.(check int) "survivor left" 1 (Ns_cache.length c);
  Ns_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Ns_cache.length c)

let test_cache_create_clamps () =
  let c = Ns_cache.create ~capacity:0 ~nshards:0 in
  Alcotest.(check int) "nshards clamped to 1" 1 (Ns_cache.nshards c);
  Ns_cache.store c "a" ~value:1 ~shard:0 ~gen:1 ~expiry:max_int;
  Ns_cache.store c "b" ~value:2 ~shard:0 ~gen:1 ~expiry:max_int;
  Alcotest.(check int) "capacity clamped to 1" 1 (Ns_cache.length c)

let cache_props =
  [
    (* Whatever the interleaving of stores, floor raises and touches: a
       fresh hit is never below its shard's floor and a stale hit always
       is — the invariant Check_naming asserts over sim traces, here at
       the data-structure level. *)
    QCheck.Test.make ~name:"hit/stale agree with the shard floor" ~count:300
      (QCheck.make
         QCheck.Gen.(
           list_size (0 -- 60)
             (oneof
                [
                  map3
                    (fun k s g -> `Store (k, s, g))
                    (oneofl [ "a"; "b"; "c"; "d" ])
                    (int_bound 3) (int_bound 9);
                  map2 (fun s g -> `Note (s, g)) (int_bound 3) (int_bound 9);
                  map (fun k -> `Find k) (oneofl [ "a"; "b"; "c"; "d" ]);
                ])))
      (fun ops ->
        let c = Ns_cache.create ~capacity:3 ~nshards:4 in
        List.for_all
          (function
            | `Store (k, s, g) ->
              Ns_cache.store c k ~value:k ~shard:s ~gen:g ~expiry:max_int;
              true
            | `Note (s, g) ->
              ignore (Ns_cache.note_generation c ~shard:s ~gen:g);
              true
            | `Find k -> (
              match Ns_cache.find c ~now:0 k with
              | Ns_cache.Hit (_, s, g) -> g >= Ns_cache.floor c ~shard:s
              | Ns_cache.Stale (_, s, g) -> g < Ns_cache.floor c ~shard:s
              | Ns_cache.Miss -> true))
          ops);
  ]

(* Four shard servers round-robin over three NS hosts (vax1 gets shards 0
   and 3), pinned 4-way FNV shard map — the same plane the @naming
   scenarios and the naming bench run. *)
let sharded_cluster ?seed () =
  Cluster.build ?seed
    ~config:
      {
        Ntcs_sim.World.Config.default with
        Ntcs_sim.World.Config.naming =
          { Ntcs_sim.World.Config.shards = 4; cache_capacity = 64 };
      }
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("ap1", Ntcs_sim.Machine.Apollo, [ "ether" ]);
      ]
    ~ns:"vax1" ~ns_replicas:[ "sun1"; "sun2" ] ()

(* First name owned by [shard] from a deterministic candidate stream. *)
let name_on_shard shard =
  let rec pick i =
    let n = Printf.sprintf "svc%d" i in
    if Shard_map.hash_name n mod 4 = shard then n else pick (i + 1)
  in
  pick 0

let test_sharded_owner_stamps_generation () =
  let c = sharded_cluster () in
  Cluster.settle ~dt:12_000_000 c;
  let name = name_on_shard 2 in
  spawn_echo c ~machine:"ap1" ~name;
  Cluster.settle ~dt:6_000_000 c;
  let servers = Cluster.name_servers c in
  Alcotest.(check int) "four shard servers" 4 (List.length servers);
  let owner = List.nth servers 2 and backup = List.nth servers 0 in
  Alcotest.(check bool) "server 2 owns the name" true (Name_server.owns owner name);
  Alcotest.(check bool) "server 0 does not" true (not (Name_server.owns backup name));
  (* The owner stamps its invalidation generation (>= 1) on the versioned
     answer; a non-owner asked with hops >= 1 must answer locally from its
     replicated copy, unversioned (gen 0) so it can never raise a floor. *)
  (match Name_server.handle_request owner (Ns_proto.Lookup_v (name, 0)) with
   | Ns_proto.R_addr_v (addr, 2, gen) ->
     Alcotest.(check bool) "owner address resolved" true (Addr.is_unique addr);
     Alcotest.(check bool) "owner gen versioned" true
       (gen >= 1 && gen = Name_server.generation owner)
   | _ -> Alcotest.fail "owner did not answer R_addr_v for its shard");
  match Name_server.handle_request backup (Ns_proto.Lookup_v (name, 1)) with
  | Ns_proto.R_addr_v (_, 2, 0) -> ()
  | Ns_proto.R_addr_v (_, s, g) ->
    Alcotest.failf "backup answered shard %d gen %d (want shard 2 gen 0)" s g
  | _ -> Alcotest.fail "backup did not answer locally at the hop bound"

let test_sharded_lookup_caches () =
  let c = sharded_cluster () in
  Cluster.settle ~dt:12_000_000 c;
  spawn_echo c ~machine:"ap1" ~name:"hot-name";
  Cluster.settle ~dt:6_000_000 c;
  let stats =
    in_process c ~machine:"sun2" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let first = check_ok "cold locate" (Ali_layer.locate commod "hot-name") in
        for _ = 1 to 5 do
          let again = check_ok "warm locate" (Ali_layer.locate commod "hot-name") in
          if not (Addr.equal first again) then Alcotest.fail "cached address changed"
        done;
        Nsp_layer.cache_stats (Commod.nsp_exn commod))
  in
  Cluster.settle c;
  let hits, stale, misses = stats () in
  Alcotest.(check int) "five warm locates hit the cache" 5 hits;
  Alcotest.(check int) "no stale hits in a quiet plane" 0 stale;
  Alcotest.(check bool) "only cold misses" true (misses >= 1 && misses <= 3)

let test_sharded_trace_determinism () =
  (* R2 for the naming plane: equal seeds, byte-identical traces — cache
     events, shard forwards and invalidations included. *)
  let run () =
    let c = sharded_cluster ~seed:77 () in
    Cluster.settle ~dt:12_000_000 c;
    spawn_echo c ~machine:"ap1" ~name:(name_on_shard 1);
    Cluster.settle ~dt:6_000_000 c;
    let done_ = ref false in
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
           let commod = bind_exn node ~name:"client" in
           let dst = check_ok "locate" (Ali_layer.locate commod (name_on_shard 1)) in
           ignore (check_ok "echo" (Ali_layer.send_sync commod ~dst (raw "ping")));
           ignore (check_ok "re-locate" (Ali_layer.locate commod (name_on_shard 1)));
           done_ := true));
    Cluster.settle ~dt:10_000_000 c;
    Alcotest.(check bool) "workload completed" true !done_;
    Fmt.str "%a" Ntcs_sim.Trace.dump (Ntcs_sim.World.trace (Cluster.world c))
  in
  let first = run () and second = run () in
  Alcotest.(check bool) "naming-plane events present" true
    (let has needle =
       let n = String.length needle and h = String.length first in
       let rec go i = i + n <= h && (String.sub first i n = needle || go (i + 1)) in
       go 0
     in
     has "ns.cache.store" && has "ns.cache.hit");
  Alcotest.(check bool) "equal seeds give byte-identical traces" true
    (String.equal first second)

let () =
  Alcotest.run "naming"
    [
      ( "service",
        [
          Alcotest.test_case "newest wins" `Quick test_newest_wins_on_duplicate_name;
          Alcotest.test_case "attribute lookup" `Quick test_attribute_lookup;
          Alcotest.test_case "entry details" `Quick test_locate_entry_details;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "forward semantics" `Quick test_forward_query_semantics;
          Alcotest.test_case "no replacement" `Quick test_forward_no_replacement_is_dead;
          Alcotest.test_case "forward by service attribute" `Quick
            test_forward_by_service_attribute;
        ] );
      ( "removal (E1)",
        [ Alcotest.test_case "warm caches survive NS removal" `Quick
            test_ns_removal_with_warm_caches ] );
      ( "replication (E10)",
        [
          Alcotest.test_case "writes propagate" `Quick test_replication_propagates;
          Alcotest.test_case "failover lookup" `Quick test_replica_failover;
          Alcotest.test_case "register via replica" `Quick test_registration_after_primary_death;
        ] );
      ( "shard map (§15)",
        Alcotest.test_case "construction and ownership" `Quick test_shard_map_basics
        :: Alcotest.test_case "distribution is non-degenerate" `Quick
             test_shard_distribution
        :: List.map QCheck_alcotest.to_alcotest shard_map_props );
      ( "lookup cache (§15)",
        Alcotest.test_case "hit, miss, TTL expiry" `Quick test_cache_hit_miss_ttl
        :: Alcotest.test_case "lazy invalidation and stale hits" `Quick
             test_cache_lazy_invalidation
        :: Alcotest.test_case "store clamps up to the floor" `Quick
             test_cache_store_clamps_to_floor
        :: Alcotest.test_case "recency order and eviction" `Quick
             test_cache_recency_and_eviction
        :: Alcotest.test_case "create clamps its arguments" `Quick
             test_cache_create_clamps
        :: List.map QCheck_alcotest.to_alcotest cache_props );
      ( "sharded plane (§15)",
        [
          Alcotest.test_case "owner stamps its generation" `Quick
            test_sharded_owner_stamps_generation;
          Alcotest.test_case "repeated lookups hit the cache" `Quick
            test_sharded_lookup_caches;
          Alcotest.test_case "equal-seed traces are byte-identical" `Quick
            test_sharded_trace_determinism;
        ] );
    ]
