(* Tests for the discrete-event simulator: scheduler semantics, blocking
   primitives, kill/cleanup, determinism, machines and networks. *)

open Ntcs_sim

let test_virtual_time_ordering () =
  let s = Sched.create () in
  let log = ref [] in
  Sched.at s 300 (fun () -> log := 3 :: !log);
  Sched.at s 100 (fun () -> log := 1 :: !log);
  Sched.at s 200 (fun () -> log := 2 :: !log);
  Sched.run s;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 300 (Sched.now s)

let test_same_time_fifo () =
  let s = Sched.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sched.at s 50 (fun () -> log := i :: !log)
  done;
  Sched.run s;
  Alcotest.(check (list int)) "seq order at same time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sleep_accumulates () =
  let s = Sched.create () in
  let times = ref [] in
  let _ =
    Sched.spawn s (fun () ->
        Sched.sleep s 10;
        times := Sched.now s :: !times;
        Sched.sleep s 15;
        times := Sched.now s :: !times)
  in
  Sched.run s;
  Alcotest.(check (list int)) "sleep times" [ 10; 25 ] (List.rev !times)

let test_run_until () =
  let s = Sched.create () in
  let fired = ref false in
  Sched.at s 1000 (fun () -> fired := true);
  Sched.run ~until:500 s;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "clock advanced to until" 500 (Sched.now s);
  Sched.run s;
  Alcotest.(check bool) "eventually" true !fired

let test_kill_runs_finalizers () =
  let s = Sched.create () in
  let cleaned = ref false in
  let victim =
    Sched.spawn s (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Sched.sleep s 1_000_000))
  in
  let _ =
    Sched.spawn s (fun () ->
        Sched.sleep s 10;
        Sched.kill s victim)
  in
  Sched.run s;
  Alcotest.(check bool) "finalizer ran" true !cleaned;
  Alcotest.(check bool) "status killed" true (Sched.status s victim = Some Sched.Was_killed);
  Alcotest.(check bool) "not alive" false (Sched.alive s victim)

let test_kill_embryo () =
  let s = Sched.create () in
  let ran = ref false in
  let victim = Sched.spawn ~at_time:100 s (fun () -> ran := true) in
  Sched.at s 10 (fun () -> Sched.kill s victim);
  Sched.run s;
  Alcotest.(check bool) "body never ran" false !ran;
  Alcotest.(check bool) "killed" true (Sched.status s victim = Some Sched.Was_killed)

let test_exit_status_and_hooks () =
  let s = Sched.create () in
  let statuses = ref [] in
  let ok = Sched.spawn s (fun () -> ()) in
  let boom = Sched.spawn s (fun () -> failwith "boom") in
  Sched.on_exit s ok (fun st -> statuses := ("ok", st) :: !statuses);
  Sched.on_exit s boom (fun st -> statuses := ("boom", st) :: !statuses);
  Sched.run s;
  let find name = List.assoc name !statuses in
  Alcotest.(check bool) "exited" true (find "ok" = Sched.Exited);
  Alcotest.(check bool) "crashed" true
    (match find "boom" with
     | Sched.Crashed (Failure m) -> String.equal m "boom"
     | Sched.Crashed _ | Sched.Exited | Sched.Was_killed -> false)

let test_on_exit_after_death_fires_immediately () =
  let s = Sched.create () in
  let p = Sched.spawn s (fun () -> ()) in
  Sched.run s;
  let fired = ref false in
  Sched.on_exit s p (fun _ -> fired := true);
  Alcotest.(check bool) "late hook fires" true !fired

let test_mailbox_order_and_timeout () =
  let s = Sched.create () in
  let mb = Sched.Mailbox.create s in
  let got = ref [] in
  let _ =
    Sched.spawn s (fun () ->
        (match Sched.Mailbox.recv mb with Some v -> got := v :: !got | None -> ());
        (match Sched.Mailbox.recv mb with Some v -> got := v :: !got | None -> ());
        match Sched.Mailbox.recv ~timeout:100 mb with
        | Some v -> got := v :: !got
        | None -> got := "timeout" :: !got)
  in
  let _ =
    Sched.spawn s (fun () ->
        Sched.sleep s 10;
        Sched.Mailbox.send mb "a";
        Sched.Mailbox.send mb "b")
  in
  Sched.run s;
  Alcotest.(check (list string)) "fifo then timeout" [ "a"; "b"; "timeout" ] (List.rev !got)

let test_mailbox_timeout_then_late_message () =
  let s = Sched.create () in
  let mb = Sched.Mailbox.create s in
  let got = ref [] in
  let _ =
    Sched.spawn s (fun () ->
        (match Sched.Mailbox.recv ~timeout:50 mb with
         | Some v -> got := v :: !got
         | None -> got := "t1" :: !got);
        match Sched.Mailbox.recv ~timeout:500 mb with
        | Some v -> got := v :: !got
        | None -> got := "t2" :: !got)
  in
  let _ =
    Sched.spawn s (fun () ->
        Sched.sleep s 200;
        Sched.Mailbox.send mb "late")
  in
  Sched.run s;
  Alcotest.(check (list string)) "timeout then delivery" [ "t1"; "late" ] (List.rev !got)

let test_ivar () =
  let s = Sched.create () in
  let iv = Sched.Ivar.create s in
  let results = ref [] in
  for i = 1 to 3 do
    ignore
      (Sched.spawn s (fun () ->
           match Sched.Ivar.read iv with
           | Some v -> results := (i, v) :: !results
           | None -> ()))
  done;
  let _ =
    Sched.spawn s (fun () ->
        Sched.sleep s 20;
        Sched.Ivar.fill iv 42)
  in
  Sched.run s;
  Alcotest.(check int) "all readers woke" 3 (List.length !results);
  List.iter (fun (_, v) -> Alcotest.(check int) "value" 42 v) !results;
  Alcotest.(check bool) "double fill refused" false (Sched.Ivar.try_fill iv 1);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Sched.Ivar.fill iv 2)

let test_ivar_timeout () =
  let s = Sched.create () in
  let iv = Sched.Ivar.create s in
  let out = ref (Some 0) in
  let _ = Sched.spawn s (fun () -> out := Sched.Ivar.read ~timeout:100 iv) in
  Sched.run s;
  Alcotest.(check (option int)) "timed out" None !out

let test_event_limit () =
  let s = Sched.create () in
  Sched.set_event_limit s 10;
  let rec renew () = Sched.after s 1 renew in
  renew ();
  Alcotest.check_raises "limit" Sched.Event_limit_exceeded (fun () -> Sched.run s)

let test_blocked_processes_diagnostic () =
  let s = Sched.create () in
  let mb = Sched.Mailbox.create s in
  let _ =
    Sched.spawn ~name:"server-loop" s (fun () ->
        ignore (Sched.Mailbox.recv mb))
  in
  let _ = Sched.spawn ~name:"finisher" s (fun () -> Sched.sleep s 10) in
  Sched.run s;
  Alcotest.(check (list string)) "only the blocked loop reported" [ "server-loop" ]
    (Sched.blocked_processes s)

let test_determinism_across_runs () =
  let run () =
    let w = World.create ~config:{ World.Config.default with World.Config.seed = 99 } () in
    let net = World.add_net w ~name:"n" Ntcs_sim.Net.Tcp_lan () in
    let m1 = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Vax () in
    let m2 = World.add_machine w ~name:"m2" Ntcs_sim.Machine.Sun3 () in
    World.attach w m1 net;
    World.attach w m2 net;
    let log = ref [] in
    for i = 1 to 20 do
      ignore
        (World.transmit w ~net ~src:m1 ~dst:m2 ~size:(i * 100) (fun () ->
             log := (i, World.now w) :: !log))
    done;
    World.run w;
    List.rev !log
  in
  Alcotest.(check (list (pair int int))) "identical runs" (run ()) (run ())

let test_fifo_transmit () =
  let w = World.create ~config:{ World.Config.default with World.Config.seed = 123 } () in
  let net = World.add_net w ~name:"n" Ntcs_sim.Net.Tcp_lan () in
  let m1 = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Vax () in
  let m2 = World.add_machine w ~name:"m2" Ntcs_sim.Machine.Sun3 () in
  World.attach w m1 net;
  World.attach w m2 net;
  let fifo = ref 0 in
  let arrivals = ref [] in
  for i = 1 to 50 do
    ignore
      (World.transmit ~fifo w ~net ~src:m1 ~dst:m2 ~size:64 (fun () ->
           arrivals := i :: !arrivals))
  done;
  World.run w;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1)) (List.rev !arrivals)

let test_partition_and_crash () =
  let w = World.create () in
  let net = World.add_net w ~name:"n" Ntcs_sim.Net.Tcp_lan () in
  let m1 = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Vax () in
  let m2 = World.add_machine w ~name:"m2" Ntcs_sim.Machine.Sun3 () in
  World.attach w m1 net;
  World.attach w m2 net;
  Alcotest.(check bool) "up: transmit ok" true
    (World.transmit w ~net ~src:m1 ~dst:m2 ~size:10 (fun () -> ()));
  net.Ntcs_sim.Net.up <- false;
  Alcotest.(check bool) "partitioned: refused" false
    (World.transmit w ~net ~src:m1 ~dst:m2 ~size:10 (fun () -> ()));
  net.Ntcs_sim.Net.up <- true;
  let pid = World.spawn w ~machine:m2 ~name:"p" (fun () -> Sched.sleep (World.sched w) 1000) in
  World.crash_machine w m2;
  Alcotest.(check bool) "machine down: refused" false
    (World.transmit w ~net ~src:m1 ~dst:m2 ~size:10 (fun () -> ()));
  World.run w;
  Alcotest.(check bool) "procs killed" true
    (Sched.status (World.sched w) pid = Some Sched.Was_killed)

let test_crash_swallows_in_flight () =
  let w = World.create () in
  let net = World.add_net w ~name:"n" Ntcs_sim.Net.Tcp_lan () in
  let m1 = World.add_machine w ~name:"m1" Ntcs_sim.Machine.Vax () in
  let m2 = World.add_machine w ~name:"m2" Ntcs_sim.Machine.Sun3 () in
  World.attach w m1 net;
  World.attach w m2 net;
  let delivered = ref false in
  ignore (World.transmit w ~net ~src:m1 ~dst:m2 ~size:10 (fun () -> delivered := true));
  (* Crash before the latency elapses. *)
  World.crash_machine w m2;
  World.run w;
  Alcotest.(check bool) "in-flight bytes lost" false !delivered

let test_machine_clocks () =
  let m = Machine.make ~id:1 ~name:"m" ~mtype:Machine.Vax ~drift_ppm:100. ~offset_us:500 () in
  Alcotest.(check int) "offset at t0" 500 (Machine.local_time m ~now_us:0);
  (* 100 ppm over 1s = 100us fast, plus offset *)
  Alcotest.(check int) "drift accumulates" (1_000_000 + 500 + 100)
    (Machine.local_time m ~now_us:1_000_000)

let test_machine_repr () =
  Alcotest.(check bool) "vax vs sun differ" false
    (Machine.repr_compatible Machine.Vax Machine.Sun3);
  Alcotest.(check bool) "sun vs apollo same" true
    (Machine.repr_compatible Machine.Sun3 Machine.Apollo);
  Alcotest.(check bool) "vax vs vax same" true (Machine.repr_compatible Machine.Vax Machine.Vax)

let test_net_latency_scales () =
  let n = Net.make ~id:1 ~name:"n" ~kind:Net.Tcp_lan ~latency:(100, 1024, 0) () in
  (match Net.latency n ~size:0 with
   | Some l -> Alcotest.(check int) "base" 100 l
   | None -> Alcotest.fail "net up");
  (match Net.latency n ~size:2048 with
   | Some l -> Alcotest.(check int) "per-kb" (100 + 2048) l
   | None -> Alcotest.fail "net up");
  n.Net.up <- false;
  Alcotest.(check bool) "down" true (Net.latency n ~size:1 = None)

let test_trace_filter () =
  let t = Trace.create () in
  Trace.record t ~at_us:1 ~cat:"a.x" ~actor:"p" "one";
  Trace.record t ~at_us:2 ~cat:"b.y" ~actor:"p" "two";
  Trace.set_filter t [ "a.x" ];
  Trace.record t ~at_us:3 ~cat:"b.y" ~actor:"p" "dropped";
  Trace.record t ~at_us:4 ~cat:"a.x" ~actor:"p" "kept";
  Alcotest.(check int) "count" 3 (Trace.count t);
  Alcotest.(check int) "matching" 2 (List.length (Trace.matching t ~cat:"a.x"));
  Alcotest.(check int) "prefix" 2 (List.length (Trace.matching_prefix t ~prefix:"a."))

let () =
  Alcotest.run "ntcs_sim"
    [
      ( "sched",
        [
          Alcotest.test_case "virtual time ordering" `Quick test_virtual_time_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "sleep accumulates" `Quick test_sleep_accumulates;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "kill runs finalizers" `Quick test_kill_runs_finalizers;
          Alcotest.test_case "kill embryo" `Quick test_kill_embryo;
          Alcotest.test_case "exit status and hooks" `Quick test_exit_status_and_hooks;
          Alcotest.test_case "late on_exit" `Quick test_on_exit_after_death_fires_immediately;
          Alcotest.test_case "event limit" `Quick test_event_limit;
          Alcotest.test_case "blocked processes diagnostic" `Quick
            test_blocked_processes_diagnostic;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "mailbox order and timeout" `Quick test_mailbox_order_and_timeout;
          Alcotest.test_case "mailbox late message" `Quick test_mailbox_timeout_then_late_message;
          Alcotest.test_case "ivar broadcast" `Quick test_ivar;
          Alcotest.test_case "ivar timeout" `Quick test_ivar_timeout;
        ] );
      ( "world",
        [
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
          Alcotest.test_case "fifo transmit" `Quick test_fifo_transmit;
          Alcotest.test_case "partition and crash" `Quick test_partition_and_crash;
          Alcotest.test_case "crash swallows in-flight" `Quick test_crash_swallows_in_flight;
        ] );
      ( "models",
        [
          Alcotest.test_case "machine clocks" `Quick test_machine_clocks;
          Alcotest.test_case "machine repr" `Quick test_machine_repr;
          Alcotest.test_case "net latency" `Quick test_net_latency_scales;
          Alcotest.test_case "trace filter" `Quick test_trace_filter;
        ] );
    ]
