(* Property-based tests (QCheck) on the core data structures and codecs:
   every wire format round-trips, containers respect their invariants, and
   the conversion machinery preserves values under arbitrary layouts. *)

open Ntcs_wire

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- generators --- *)

let field_gen =
  QCheck.Gen.(
    frequency
      [
        (2, return Layout.F_i8);
        (2, return Layout.F_i16);
        (3, return Layout.F_i32);
        (2, return Layout.F_i64);
        (2, map (fun n -> Layout.F_char_array (1 + (n mod 24))) small_nat);
      ])

let layout_gen = QCheck.Gen.(list_size (int_range 1 12) field_gen)

let value_for_field rng field =
  match field with
  | Layout.F_i8 -> Layout.V_int (QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_range (-128) 127))
  | Layout.F_i16 ->
    Layout.V_int (QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_range (-32768) 32767))
  | Layout.F_i32 ->
    Layout.V_int
      (QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_range (-0x40000000) 0x3FFFFFFF))
  | Layout.F_i64 ->
    Layout.V_int (QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_range 0 0x3FFFFFFFFFFF))
  | Layout.F_char_array n ->
    let len = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_range 0 (n - 1)) in
    let s =
      QCheck.Gen.generate1 ~rand:rng
        (QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'z') (QCheck.Gen.return len))
    in
    Layout.V_str s

let layout_with_values =
  QCheck.make
    ~print:(fun (layout, _) ->
      String.concat ";" (List.map Layout.field_to_string layout))
    QCheck.Gen.(
      layout_gen >>= fun layout ->
      (fun rng -> (layout, List.map (value_for_field rng) layout)))

let order_gen = QCheck.Gen.oneofl [ Endian.Le; Endian.Be ]

(* --- image mode --- *)

let prop_image_roundtrip =
  qtest "image encode/decode roundtrip (same order)"
    (QCheck.pair layout_with_values (QCheck.make order_gen))
    (fun ((layout, values), order) ->
      let img = Layout.encode ~order layout values in
      let back = Layout.decode ~order layout img in
      List.for_all2 Layout.value_equal values back)

let prop_image_size =
  qtest "image size equals layout size"
    (QCheck.pair layout_with_values (QCheck.make order_gen))
    (fun ((layout, values), order) ->
      Bytes.length (Layout.encode ~order layout values) = Layout.size layout)

(* --- packed mode --- *)

let prop_packed_roundtrip =
  qtest "packed codec generated from layout roundtrips" layout_with_values
    (fun (layout, values) ->
      let codec = Packed.of_layout layout in
      let back = Packed.run_unpack codec (Packed.run_pack codec values) in
      List.for_all2 Layout.value_equal values back)

let prop_packed_primitive_roundtrips =
  qtest "packed primitive combinators roundtrip"
    QCheck.(triple (list small_int) (pair string bool) (option (pair int string)))
    (fun v ->
      let codec =
        Packed.triple (Packed.list Packed.int)
          (Packed.pair Packed.string Packed.bool)
          (Packed.option (Packed.pair Packed.int Packed.string))
      in
      Packed.run_unpack codec (Packed.run_pack codec v) = v)

let prop_packed_float_exact =
  qtest "packed float is exact" QCheck.float (fun f ->
      let back = Packed.run_unpack Packed.float (Packed.run_pack Packed.float f) in
      (Float.is_nan f && Float.is_nan back) || back = f)

let prop_packed_garbage_never_crashes =
  qtest "unpacking random bytes returns Error, never raises"
    QCheck.(pair string (make layout_gen))
    (fun (junk, layout) ->
      let codec = Packed.of_layout layout in
      match Packed.run_unpack_result codec (Bytes.of_string junk) with
      | Ok _ | Error _ -> true)

(* --- shift mode --- *)

let word_gen = QCheck.(map (fun n -> n land 0xFFFFFFFF) (int_bound max_int))

let prop_shift_roundtrip =
  qtest "shift words roundtrip" QCheck.(array_of_size (QCheck.Gen.int_range 0 32) word_gen)
    (fun words ->
      let b = Shift.encode_words words in
      Shift.decode_words b ~off:0 ~count:(Array.length words) = words)

let prop_bitfields_roundtrip =
  qtest "bit fields roundtrip"
    QCheck.(quad (int_bound 255) (int_bound 15) (int_bound 4095) (int_bound 255))
    (fun (a, b, c, d) ->
      let word = Shift.pack_bits [ (a, 8); (b, 4); (c, 12); (d, 8) ] in
      Shift.unpack_bits word [ 8; 4; 12; 8 ] = [ a; b; c; d ])

(* --- addressing + header --- *)

let addr_gen =
  QCheck.Gen.(
    bool >>= fun temp ->
    int_range 0 0x3FFFFFFF >>= fun space ->
    map
      (fun v ->
        if temp then Ntcs.Addr.temporary ~assigner:space ~value:v
        else Ntcs.Addr.unique ~server_id:space ~value:v)
      (int_range 0 0xFFFFFFF))

let prop_addr_roundtrip =
  qtest "address words roundtrip" (QCheck.make addr_gen) (fun a ->
      let w = Ntcs.Addr.to_words a in
      Ntcs.Addr.equal a (Ntcs.Addr.of_words w.(0) w.(1)))

let header_gen =
  QCheck.Gen.(
    addr_gen >>= fun src ->
    addr_gen >>= fun dst ->
    oneofl
      [ Ntcs.Proto.Data; Ntcs.Proto.Dgram; Ntcs.Proto.Reply; Ntcs.Proto.Ping; Ntcs.Proto.Pong ]
    >>= fun kind ->
    order_gen >>= fun order ->
    int_range 0 255 >>= fun hops ->
    int_range 0 0xFFFFFF >>= fun seq ->
    int_range 0 0xFFFFFF >>= fun conv ->
    int_range 0 8999 >>= fun app_tag ->
    map
      (fun ivc ->
        Ntcs.Proto.make_header ~kind ~src ~dst ~src_order:order ~hops ~seq ~conv ~app_tag ~ivc
          ~payload_len:0 ())
      (int_range 0 0xFFFFFF))

let prop_header_roundtrip =
  qtest "nucleus header roundtrips through shift mode"
    (QCheck.pair (QCheck.make header_gen) QCheck.string)
    (fun (h, payload) ->
      let payload = Bytes.of_string payload in
      let h', payload' = Ntcs.Proto.decode_frame (Ntcs.Proto.encode_frame h payload) in
      Ntcs.Addr.equal h.Ntcs.Proto.src h'.Ntcs.Proto.src
      && Ntcs.Addr.equal h.Ntcs.Proto.dst h'.Ntcs.Proto.dst
      && h.Ntcs.Proto.kind = h'.Ntcs.Proto.kind
      && h.Ntcs.Proto.src_order = h'.Ntcs.Proto.src_order
      && h.Ntcs.Proto.hops = h'.Ntcs.Proto.hops
      && h.Ntcs.Proto.seq = h'.Ntcs.Proto.seq
      && h.Ntcs.Proto.conv = h'.Ntcs.Proto.conv
      && h.Ntcs.Proto.app_tag = h'.Ntcs.Proto.app_tag
      && h.Ntcs.Proto.ivc = h'.Ntcs.Proto.ivc
      && Bytes.equal payload payload')

(* --- containers --- *)

let prop_heap_sorts =
  qtest "heap drains sorted" QCheck.(list int) (fun l ->
      let h = Ntcs_util.Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Ntcs_util.Heap.push h) l;
      Ntcs_util.Heap.to_list h = List.sort compare l)

let prop_lru_capacity =
  qtest "lru never exceeds capacity" QCheck.(pair (int_range 1 16) (list (pair small_int small_int)))
    (fun (cap, ops) ->
      let c = Ntcs_util.Lru.create cap in
      List.iter (fun (k, v) -> Ntcs_util.Lru.set c k v) ops;
      Ntcs_util.Lru.length c <= cap)

let prop_lru_last_write_wins =
  qtest "lru find returns last write" QCheck.(list (pair (int_bound 7) small_int))
    (fun ops ->
      let c = Ntcs_util.Lru.create 100 (* larger than key space: no evictions *) in
      List.iter (fun (k, v) -> Ntcs_util.Lru.set c k v) ops;
      List.for_all
        (fun (k, _) ->
          let expected = List.assoc k (List.rev ops) in
          Ntcs_util.Lru.find c k = Some expected)
        ops)

let prop_heap_equal_keys_fifo =
  qtest "heap with (key, seq) tie-break drains equal keys in insertion order"
    QCheck.(list (int_bound 3))
    (fun keys ->
      (* The simulator's usage pattern: stability comes from the (time,
         sequence) key, so equal times must drain in push order. *)
      let h =
        Ntcs_util.Heap.create ~leq:(fun (a, sa) (b, sb) -> a < b || (a = b && sa <= sb))
      in
      List.iteri (fun i k -> Ntcs_util.Heap.push h (k, i)) keys;
      Ntcs_util.Heap.to_list h = List.sort compare (List.mapi (fun i k -> (k, i)) keys))

let prop_lru_iter_preserves_recency =
  qtest "lru iter is recency order and does not perturb it"
    QCheck.(pair (int_range 1 8) (list (pair (int_bound 7) small_int)))
    (fun (cap, ops) ->
      let c = Ntcs_util.Lru.create cap in
      (* Model recency as a most-recent-first key list. *)
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          Ntcs_util.Lru.set c k v;
          model := k :: List.filter (fun k' -> k' <> k) !model;
          model := List.filteri (fun i _ -> i < cap) !model)
        ops;
      let snapshot () =
        let acc = ref [] in
        Ntcs_util.Lru.iter c (fun k _ -> acc := k :: !acc);
        List.rev !acc
      in
      let order1 = snapshot () in
      let order2 = snapshot () in
      order1 = !model && order2 = order1
      && (* Eviction after iter still removes the true LRU entry. *)
      (match List.rev !model with
       | lru :: _ when List.length !model = cap ->
         Ntcs_util.Lru.set c 1000 0;
         not (Ntcs_util.Lru.mem c lru)
       | _ -> true))

let prop_bqueue_fifo =
  qtest "bqueue preserves order of accepted items" QCheck.(pair (int_range 1 8) (list small_int))
    (fun (cap, items) ->
      let q = Ntcs_util.Bqueue.create cap in
      let accepted = List.filter (fun x -> Ntcs_util.Bqueue.push q x) items in
      let rec drain acc =
        match Ntcs_util.Bqueue.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = accepted)

let prop_stats_bounds =
  qtest "percentiles lie within min/max" QCheck.(list_of_size (QCheck.Gen.int_range 1 50) float)
    (fun xs ->
      if List.exists Float.is_nan xs then true
      else begin
        let s = Ntcs_util.Stats.create () in
        List.iter (Ntcs_util.Stats.add s) xs;
        let lo = Ntcs_util.Stats.min_ s and hi = Ntcs_util.Stats.max_ s in
        List.for_all
          (fun p ->
            let v = Ntcs_util.Stats.percentile s p in
            v >= lo -. 1e-9 && v <= hi +. 1e-9)
          [ 0.; 10.; 50.; 90.; 99.; 100. ]
      end)

(* --- tokenizer / corpus --- *)

let prop_tokenizer_idempotent_text =
  qtest "tokens of rejoined tokens are stable" QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      let once = Ursa.Tokenizer.tokens s in
      let again = Ursa.Tokenizer.tokens (String.concat " " once) in
      once = again)

let prop_corpus_partition_preserves =
  qtest "corpus partition loses nothing" QCheck.(pair (int_range 1 7) (int_range 0 60))
    (fun (k, n) ->
      let docs = Ursa.Corpus.generate n in
      let parts = Ursa.Corpus.partition k docs in
      List.length parts = k
      && List.sort compare (List.concat_map (List.map (fun d -> d.Ursa.Corpus.d_id)) parts)
         = List.init n Fun.id)

let prop_distributed_search_equals_local =
  qtest ~count:60 "partitioned search merge equals single-index reference"
    QCheck.(triple (int_range 1 5) (int_range 1 40) small_int)
    (fun (parts, ndocs, qseed) ->
      let docs = Ursa.Corpus.generate ~seed:(qseed + 3) ndocs in
      let query_terms =
        let _, vocab = Ursa.Corpus.topics.(qseed mod Array.length Ursa.Corpus.topics) in
        [ vocab.(0); vocab.(1 mod Array.length vocab) ]
      in
      (* Distributed: per-partition indexes queried + merged. *)
      let replies =
        List.map
          (fun part ->
            let idx = Ursa.Index.of_docs part in
            {
              Ursa.Ursa_msg.ir_doc_count = Ursa.Index.doc_count idx;
              ir_results =
                List.map
                  (fun term ->
                    let postings = Ursa.Index.postings idx term in
                    {
                      Ursa.Ursa_msg.tp_term = term;
                      tp_df = List.length postings;
                      tp_postings =
                        List.map (fun p -> (p.Ursa.Index.p_doc, p.Ursa.Index.p_tf)) postings;
                    })
                  query_terms;
            })
          (Ursa.Corpus.partition parts docs)
      in
      let merged = Ursa.Servers.merge_scores replies in
      (* Reference: one index over everything. *)
      let idx = Ursa.Index.of_docs docs in
      let n_docs = Ursa.Index.doc_count idx in
      let scores = Hashtbl.create 16 in
      List.iter
        (fun term ->
          let postings = Ursa.Index.postings idx term in
          let df = List.length postings in
          List.iter
            (fun p ->
              let add = Ursa.Index.tf_idf ~tf:p.Ursa.Index.p_tf ~df ~n_docs in
              let cur =
                match Hashtbl.find_opt scores p.Ursa.Index.p_doc with Some x -> x | None -> 0.
              in
              Hashtbl.replace scores p.Ursa.Index.p_doc (cur +. add))
            postings)
        query_terms;
      let reference =
        Hashtbl.fold (fun d x acc -> (d, x) :: acc) scores []
        |> List.sort (fun (d1, x1) (d2, x2) ->
               match compare x2 x1 with 0 -> compare d1 d2 | c -> c)
      in
      List.map fst merged = List.map fst reference
      && List.for_all2 (fun (_, a) (_, b) -> Float.abs (a -. b) < 1e-9) merged reference)

let prop_phys_addr_roundtrip =
  qtest "physical addresses roundtrip their string form"
    QCheck.(pair (pair string small_int) bool)
    (fun ((name, port), is_tcp) ->
      let clean =
        String.map (fun c -> if c = '\n' || c = ':' || c = '/' || c = '\x00' then '_' else c)
          name
      in
      let clean = if clean = "" then "h" else clean in
      let a =
        if is_tcp then Ntcs_ipcs.Phys_addr.tcp ~host:clean ~port:(port + 1)
        else Ntcs_ipcs.Phys_addr.mbx ~path:("//" ^ clean ^ "/mbx/x")
      in
      match Ntcs_ipcs.Phys_addr.of_string (Ntcs_ipcs.Phys_addr.to_string a) with
      | Some b -> Ntcs_ipcs.Phys_addr.equal a b
      | None -> false)

(* --- observability histograms --- *)

let histo_of l =
  let h = Ntcs_obs.Histo.create () in
  List.iter (Ntcs_obs.Histo.add h) l;
  h

let prop_histo_bucket_bounds =
  qtest "histo bucket bounds bracket every value"
    QCheck.(oneof [ int_bound 100; int_bound 100_000; map abs int ])
    (fun v ->
      let v = abs v in
      let i = Ntcs_obs.Histo.bucket_of v in
      Ntcs_obs.Histo.lower_bound i <= v && v <= Ntcs_obs.Histo.upper_bound i)

let prop_histo_buckets_partition =
  qtest "histo buckets tile the value range without gaps"
    QCheck.(int_bound 250)
    (fun i ->
      Ntcs_obs.Histo.upper_bound i + 1 = Ntcs_obs.Histo.lower_bound (i + 1))

let prop_histo_merge_assoc =
  qtest "histo merge is associative"
    QCheck.(triple (list small_nat) (list small_nat) (list small_nat))
    (fun (a, b, c) ->
      let ha = histo_of a and hb = histo_of b and hc = histo_of c in
      Ntcs_obs.Histo.equal
        (Ntcs_obs.Histo.merge (Ntcs_obs.Histo.merge ha hb) hc)
        (Ntcs_obs.Histo.merge ha (Ntcs_obs.Histo.merge hb hc)))

let prop_histo_merge_is_union =
  qtest "merging histograms equals one histogram of all samples"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      Ntcs_obs.Histo.equal
        (Ntcs_obs.Histo.merge (histo_of a) (histo_of b))
        (histo_of (a @ b)))

let prop_histo_percentiles_bounded =
  qtest "histo percentiles lie within min/max"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) small_nat)
    (fun xs ->
      let h = histo_of xs in
      List.for_all
        (fun p ->
          let v = Ntcs_obs.Histo.percentile h p in
          v >= Ntcs_obs.Histo.min_value h && v <= Ntcs_obs.Histo.max_value h)
        [ 1.; 50.; 95.; 99.; 100. ])

let prop_rng_int_bounds =
  qtest "rng int respects bounds" QCheck.(pair (int_range 1 1000) small_int)
    (fun (bound, seed) ->
      let r = Ntcs_util.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Ntcs_util.Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let () =
  Alcotest.run "properties"
    [
      ("image", [ prop_image_roundtrip; prop_image_size ]);
      ( "packed",
        [
          prop_packed_roundtrip;
          prop_packed_primitive_roundtrips;
          prop_packed_float_exact;
          prop_packed_garbage_never_crashes;
        ] );
      ("shift", [ prop_shift_roundtrip; prop_bitfields_roundtrip ]);
      ("protocol", [ prop_addr_roundtrip; prop_header_roundtrip ]);
      ( "containers",
        [ prop_heap_sorts; prop_heap_equal_keys_fifo; prop_lru_capacity;
          prop_lru_last_write_wins; prop_lru_iter_preserves_recency; prop_bqueue_fifo;
          prop_stats_bounds ] );
      ( "obs",
        [ prop_histo_bucket_bounds; prop_histo_buckets_partition; prop_histo_merge_assoc;
          prop_histo_merge_is_union; prop_histo_percentiles_bounded ] );
      ( "application",
        [ prop_tokenizer_idempotent_text; prop_corpus_partition_preserves;
          prop_distributed_search_equals_local; prop_phys_addr_roundtrip; prop_rng_int_bounds ]
      );
    ]
