(* The URSA mini information-retrieval system: unit tests of the IR pieces
   and an end-to-end distributed search over the NTCS. *)

open Ntcs
open Helpers

let test_tokenizer () =
  Alcotest.(check (list string)) "splits and lowercases"
    [ "network"; "transparent"; "messages" ]
    (Ursa.Tokenizer.tokens "Network-TRANSPARENT messages!");
  Alcotest.(check (list string)) "drops stopwords" [ "cat"; "mat" ]
    (Ursa.Tokenizer.tokens "the cat is on the mat");
  Alcotest.(check (list string)) "empty" [] (Ursa.Tokenizer.tokens "  ... !!");
  let counts = Ursa.Tokenizer.term_counts "dog dog cat" in
  Alcotest.(check (list (pair string int))) "term counts" [ ("cat", 1); ("dog", 2) ] counts

let test_index_postings () =
  let idx = Ursa.Index.create () in
  Ursa.Index.add_document idx ~doc_id:1 ~text:"gateway gateway circuit";
  Ursa.Index.add_document idx ~doc_id:2 ~text:"circuit naming";
  Alcotest.(check int) "docs" 2 (Ursa.Index.doc_count idx);
  Alcotest.(check int) "df circuit" 2 (Ursa.Index.document_frequency idx "circuit");
  Alcotest.(check int) "df gateway" 1 (Ursa.Index.document_frequency idx "gateway");
  (match Ursa.Index.postings idx "gateway" with
   | [ p ] ->
     Alcotest.(check int) "doc" 1 p.Ursa.Index.p_doc;
     Alcotest.(check int) "tf" 2 p.Ursa.Index.p_tf
   | _ -> Alcotest.fail "postings shape");
  Alcotest.(check (list int)) "missing term" []
    (List.map (fun p -> p.Ursa.Index.p_doc) (Ursa.Index.postings idx "nothing"))

let test_tf_idf_ranks_specific_terms_higher () =
  (* A term appearing in fewer documents scores higher at equal tf. *)
  let rare = Ursa.Index.tf_idf ~tf:2 ~df:1 ~n_docs:100 in
  let common = Ursa.Index.tf_idf ~tf:2 ~df:90 ~n_docs:100 in
  Alcotest.(check bool) "rare beats common" true (rare > common);
  Alcotest.(check (float 1e-9)) "zero df" 0. (Ursa.Index.tf_idf ~tf:3 ~df:0 ~n_docs:10)

let test_corpus_generation_deterministic () =
  let a = Ursa.Corpus.generate ~seed:7 20 and b = Ursa.Corpus.generate ~seed:7 20 in
  Alcotest.(check bool) "same corpus" true (a = b);
  let c = Ursa.Corpus.generate ~seed:8 20 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check int) "count" 20 (List.length a)

let test_corpus_partition () =
  let docs = Ursa.Corpus.generate 10 in
  let parts = Ursa.Corpus.partition 3 docs in
  Alcotest.(check int) "3 parts" 3 (List.length parts);
  let total = List.fold_left (fun acc p -> acc + List.length p) 0 parts in
  Alcotest.(check int) "no docs lost" 10 total;
  let ids = List.concat_map (List.map (fun d -> d.Ursa.Corpus.d_id)) parts in
  Alcotest.(check (list int)) "all ids present" (List.init 10 Fun.id) (List.sort compare ids)

let deploy_cluster () =
  let c = lan_cluster () in
  Cluster.settle c;
  let corpus = Ursa.Corpus.generate 60 in
  Ursa.Host.deploy c ~machines:[ "sun1"; "sun2" ] ~partitions:3 ~corpus
    ~search_machine:"vax1";
  Cluster.settle ~dt:5_000_000 c;
  (c, corpus)

let test_end_to_end_search () =
  let c, corpus = deploy_cluster () in
  let reply = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"user" (fun node ->
         let commod = bind_exn node ~name:"user" in
         let host = Ursa.Host.create commod in
         reply := Some (check_ok "search" (Ursa.Host.search ~k:5 host "gateway routing circuit"))));
  Cluster.settle ~dt:30_000_000 c;
  match !reply with
  | None -> Alcotest.fail "no reply"
  | Some r ->
    Alcotest.(check int) "all partitions answered" 3 r.Ursa.Ursa_msg.sr_partitions;
    Alcotest.(check bool) "found hits" true (List.length r.Ursa.Ursa_msg.sr_hits > 0);
    (* Scores sorted descending. *)
    let scores = List.map (fun h -> h.Ursa.Ursa_msg.h_score_milli) r.Ursa.Ursa_msg.sr_hits in
    Alcotest.(check (list int)) "ranked" (List.sort (fun a b -> compare b a) scores) scores;
    (* The top hit really contains at least one query term. *)
    (match r.Ursa.Ursa_msg.sr_hits with
     | top :: _ ->
       let doc = List.find (fun d -> d.Ursa.Corpus.d_id = top.Ursa.Ursa_msg.h_doc) corpus in
       let terms = Ursa.Tokenizer.tokens doc.Ursa.Corpus.d_body in
       Alcotest.(check bool) "top hit on-topic" true
         (List.exists (fun t -> List.mem t [ "gateway"; "routing"; "circuit" ]) terms)
     | [] -> Alcotest.fail "no hits")

let test_search_matches_local_reference () =
  (* The distributed answer must equal a single-machine reference ranking. *)
  let c, corpus = deploy_cluster () in
  let query = "name server resolution" in
  let reply = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"user" (fun node ->
         let commod = bind_exn node ~name:"user" in
         let host = Ursa.Host.create commod in
         reply := Some (check_ok "search" (Ursa.Host.search ~k:10 host query))));
  Cluster.settle ~dt:30_000_000 c;
  (* Reference: one big index. *)
  let idx = Ursa.Index.of_docs corpus in
  let terms = Ursa.Tokenizer.tokens query in
  let n_docs = Ursa.Index.doc_count idx in
  let scores = Hashtbl.create 32 in
  List.iter
    (fun term ->
      let postings = Ursa.Index.postings idx term in
      let df = List.length postings in
      List.iter
        (fun p ->
          let add = Ursa.Index.tf_idf ~tf:p.Ursa.Index.p_tf ~df ~n_docs in
          let cur =
            match Hashtbl.find_opt scores p.Ursa.Index.p_doc with Some s -> s | None -> 0.
          in
          Hashtbl.replace scores p.Ursa.Index.p_doc (cur +. add))
        postings)
    terms;
  let expected =
    Hashtbl.fold (fun d s acc -> (d, s) :: acc) scores []
    |> List.sort (fun (d1, s1) (d2, s2) ->
           match compare s2 s1 with 0 -> compare d1 d2 | c -> c)
    |> List.filteri (fun i _ -> i < 10)
    |> List.map fst
  in
  match !reply with
  | None -> Alcotest.fail "no reply"
  | Some r ->
    let got = List.map (fun h -> h.Ursa.Ursa_msg.h_doc) r.Ursa.Ursa_msg.sr_hits in
    Alcotest.(check (list int)) "distributed ranking equals reference" expected got

let test_document_fetch () =
  let c, corpus = deploy_cluster () in
  let fetched = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"reader" (fun node ->
         let commod = bind_exn node ~name:"reader" in
         let host = Ursa.Host.create commod in
         fetched := Some (check_ok "fetch" (Ursa.Host.fetch host ~doc:7))));
  Cluster.settle ~dt:30_000_000 c;
  match !fetched with
  | None -> Alcotest.fail "no fetch"
  | Some (title, fetched_body) ->
    let doc = List.find (fun d -> d.Ursa.Corpus.d_id = 7) corpus in
    Alcotest.(check string) "title" doc.Ursa.Corpus.d_title title;
    Alcotest.(check string) "body" doc.Ursa.Corpus.d_body fetched_body

let test_search_survives_partition_relocation () =
  (* Relocate an index partition mid-flight: the coordinator re-resolves
     through the naming service and answers from all partitions again. *)
  let c = lan_cluster () in
  Cluster.settle c;
  let corpus = Ursa.Corpus.generate 40 in
  let parts = Ursa.Corpus.partition 2 corpus in
  let pctl = Ntcs_drts.Process_ctl.create c in
  let specs =
    List.mapi
      (fun i docs ->
        {
          Ntcs_drts.Process_ctl.sp_name = Ursa.Servers.index_server_name i;
          sp_attrs = Ursa.Servers.index_server_attrs ~partition:i;
          sp_body = Ursa.Servers.index_server_body docs;
        })
      parts
  in
  let managed = List.map (fun spec -> Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1") specs in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"ursa-search" (fun node ->
         match Commod.bind node ~name:"ursa-search" ~attrs:Ursa.Servers.search_server_attrs with
         | Ok commod -> Ursa.Servers.search_server_body commod
         | Error e -> failwith (Errors.to_string e)));
  Cluster.settle ~dt:5_000_000 c;
  let first = ref None and second = ref None in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"user" (fun node ->
         let commod = bind_exn node ~name:"user" in
         let host = Ursa.Host.create commod in
         first := Some (check_ok "search 1" (Ursa.Host.search ~k:5 host "index search"));
         Ntcs_sim.Sched.sleep (Node.sched node) 8_000_000;
         second := Some (check_ok "search 2"
                           (Ursa.Host.search ~k:5 ~timeout_us:20_000_000 host "index search"))));
  Ntcs_sim.Sched.after (Cluster.sched c) 4_000_000 (fun () ->
      ignore (Ntcs_drts.Process_ctl.relocate pctl (List.hd managed) ~to_machine:"sun2"));
  Cluster.settle ~dt:60_000_000 c;
  (match !first with
   | Some r -> Alcotest.(check int) "both partitions before" 2 r.Ursa.Ursa_msg.sr_partitions
   | None -> Alcotest.fail "no first reply");
  match !second with
  | Some r -> Alcotest.(check int) "both partitions after relocation" 2 r.Ursa.Ursa_msg.sr_partitions
  | None -> Alcotest.fail "no second reply"

let () =
  Alcotest.run "ursa"
    [
      ( "ir-core",
        [
          Alcotest.test_case "tokenizer" `Quick test_tokenizer;
          Alcotest.test_case "index postings" `Quick test_index_postings;
          Alcotest.test_case "tf-idf" `Quick test_tf_idf_ranks_specific_terms_higher;
          Alcotest.test_case "corpus deterministic" `Quick test_corpus_generation_deterministic;
          Alcotest.test_case "corpus partition" `Quick test_corpus_partition;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "end-to-end search" `Quick test_end_to_end_search;
          Alcotest.test_case "matches local reference" `Quick test_search_matches_local_reference;
          Alcotest.test_case "document fetch" `Quick test_document_fetch;
          Alcotest.test_case "partition relocation" `Quick
            test_search_survives_partition_relocation;
        ] );
    ]
