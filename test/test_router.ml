(* Unit tests of route planning (§4.2) over synthetic topologies — no
   simulation, pure graph logic. *)

open Ntcs
open Ntcs_ipcs

let addr i = Addr.unique ~server_id:800 ~value:i

let edge ~a ~in_ ~spans =
  {
    Router.ge_addr = addr a;
    ge_phys = [ Phys_addr.tcp ~host:"h" ~port:(4000 + a) ];
    ge_in = in_;
    ge_spans = spans;
  }

let hops paths = List.map (List.map (fun e -> e.Router.ge_addr)) paths

let test_direct_reachability_no_route () =
  (* Target net reachable without any gateway: routes from/to same net is
     not this function's business (plan handles it); disjoint nets with no
     edges yield nothing. *)
  Alcotest.(check int) "no edges, no route" 0
    (List.length (Router.routes ~edges:[] ~from_nets:[ 1 ] ~to_nets:[ 2 ]))

let test_single_hop () =
  let e = edge ~a:1 ~in_:1 ~spans:[ 1; 2 ] in
  let paths = Router.routes ~edges:[ e ] ~from_nets:[ 1 ] ~to_nets:[ 2 ] in
  Alcotest.(check bool) "one path through the bridge" true (hops paths = [ [ addr 1 ] ])

let test_two_hops_shortest () =
  (* 1 -(A)- 2 -(B)- 3, plus a direct bridge 1-3 (C): shortest first. *)
  let a = edge ~a:1 ~in_:1 ~spans:[ 1; 2 ] in
  let a' = edge ~a:2 ~in_:2 ~spans:[ 1; 2 ] in
  let b = edge ~a:3 ~in_:2 ~spans:[ 2; 3 ] in
  let b' = edge ~a:4 ~in_:3 ~spans:[ 2; 3 ] in
  let c = edge ~a:5 ~in_:1 ~spans:[ 1; 3 ] in
  let paths = Router.routes ~edges:[ a; a'; b; b'; c ] ~from_nets:[ 1 ] ~to_nets:[ 3 ] in
  (match hops paths with
   | first :: _ -> Alcotest.(check bool) "direct bridge wins" true (first = [ addr 5 ])
   | [] -> Alcotest.fail "no routes");
  Alcotest.(check bool) "two-hop alternative also found" true
    (List.mem [ addr 1; addr 3 ] (hops paths))

let test_one_route_per_first_hop () =
  (* Two parallel bridges between the same nets: one route each. *)
  let g1 = edge ~a:1 ~in_:1 ~spans:[ 1; 2 ] in
  let g2 = edge ~a:2 ~in_:1 ~spans:[ 1; 2 ] in
  let paths = Router.routes ~edges:[ g1; g2 ] ~from_nets:[ 1 ] ~to_nets:[ 2 ] in
  Alcotest.(check int) "two alternatives" 2 (List.length paths);
  Alcotest.(check bool) "distinct first hops" true
    (List.sort_uniq compare (List.map List.hd (hops paths)) |> List.length = 2)

let test_no_loops () =
  (* A cycle of nets: BFS must terminate and find the 2-hop path. *)
  let ab = edge ~a:1 ~in_:1 ~spans:[ 1; 2 ] in
  let ba = edge ~a:2 ~in_:2 ~spans:[ 1; 2 ] in
  let bc = edge ~a:3 ~in_:2 ~spans:[ 2; 3 ] in
  let cb = edge ~a:4 ~in_:3 ~spans:[ 2; 3 ] in
  let ca = edge ~a:5 ~in_:3 ~spans:[ 3; 1 ] in
  let ac = edge ~a:6 ~in_:1 ~spans:[ 3; 1 ] in
  let paths =
    Router.routes ~edges:[ ab; ba; bc; cb; ca; ac ] ~from_nets:[ 1 ] ~to_nets:[ 3 ]
  in
  Alcotest.(check bool) "found" true (paths <> []);
  List.iter
    (fun p -> Alcotest.(check bool) "path is short" true (List.length p <= 2))
    paths

let test_multihomed_gateway () =
  (* One gateway spanning three nets bridges any pair in one hop. *)
  let g = edge ~a:9 ~in_:1 ~spans:[ 1; 2; 3 ] in
  let paths = Router.routes ~edges:[ g ] ~from_nets:[ 1 ] ~to_nets:[ 3 ] in
  Alcotest.(check bool) "one hop" true (hops paths = [ [ addr 9 ] ])

let test_edge_of_entry_parsing () =
  let entry =
    {
      Ns_proto.e_name = "gw/x@2";
      e_addr = addr 7;
      e_phys = [ "tcp://mid:4501"; "garbage" ];
      e_nets = [ 2 ];
      e_order = 1;
      e_attrs =
        [ (Router.attr_gateway, "yes"); (Router.attr_net, "2"); (Router.attr_spans, "1, 2") ];
      e_alive = true;
    }
  in
  match Router.edge_of_entry entry with
  | None -> Alcotest.fail "should parse"
  | Some e ->
    Alcotest.(check int) "ingress" 2 e.Router.ge_in;
    Alcotest.(check (list int)) "spans" [ 1; 2 ] e.Router.ge_spans;
    Alcotest.(check int) "phys parsed, garbage dropped" 1 (List.length e.Router.ge_phys)

let test_edge_of_entry_rejects_non_gateways () =
  let entry =
    {
      Ns_proto.e_name = "app";
      e_addr = addr 8;
      e_phys = [];
      e_nets = [ 1 ];
      e_order = 0;
      e_attrs = [];
      e_alive = true;
    }
  in
  Alcotest.(check bool) "no attrs, no edge" true (Router.edge_of_entry entry = None)

let () =
  Alcotest.run "router"
    [
      ( "routes",
        [
          Alcotest.test_case "no edges" `Quick test_direct_reachability_no_route;
          Alcotest.test_case "single hop" `Quick test_single_hop;
          Alcotest.test_case "shortest first, alternatives kept" `Quick test_two_hops_shortest;
          Alcotest.test_case "one route per first hop" `Quick test_one_route_per_first_hop;
          Alcotest.test_case "cycles terminate" `Quick test_no_loops;
          Alcotest.test_case "multihomed gateway" `Quick test_multihomed_gateway;
        ] );
      ( "edges",
        [
          Alcotest.test_case "entry parsing" `Quick test_edge_of_entry_parsing;
          Alcotest.test_case "non-gateway rejected" `Quick test_edge_of_entry_rejects_non_gateways;
        ] );
    ]
