(* Self-tests for ntcs_check: the lifecycle automaton's structural
   soundness, one seeded violation per analysis (handler gap, unguarded
   NSP→LCM cycle, illegal trace) asserting the checker fires with the right
   file:line, the schedule explorer's enumeration, and exhaustive
   exploration of the bounded scenarios. *)

let src file text = Lint_lex.of_string ~file text
let diag_strings ds = List.map Lint_diag.to_string ds

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* --- the automaton itself --- *)

let test_automaton_sound () =
  Alcotest.(check (list string)) "structurally sound" [] (Check_auto.check_automaton ())

let test_automaton_tables_cover_protocol () =
  (* Every kind the table declares maps to some handler list; the dynamic
     checker's vocabulary (inputs_of) round-trips through the table. *)
  Alcotest.(check int) "eleven kinds" 11 (List.length Check_auto.kinds);
  Alcotest.(check int) "eleven requests" 11 (List.length Check_auto.ns_requests);
  Alcotest.(check int) "ten responses" 10 (List.length Check_auto.ns_responses)

(* --- seeded handler gap (static) --- *)

let fake_lcm ?(pragma = "") ~missing () =
  let arms =
    List.filter_map
      (fun (k, _, handlers) ->
        if List.mem "Lcm_layer" handlers && k <> missing then
          Some ("  | Proto." ^ k ^ " -> ()")
        else None)
      Check_auto.kinds
  in
  pragma ^ "let handle = function\n" ^ String.concat "\n" arms ^ "\n  | _ -> ()\n"

let test_handler_gap_detected () =
  let s = src "lib/core/lcm_layer.ml" (fake_lcm ~missing:"Pong" ()) in
  let ds = Check_proto.check [ s ] in
  Alcotest.(check int) "exactly one gap" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check string) "file" "lib/core/lcm_layer.ml" d.Lint_diag.file;
  (* anchored at the first Proto.<kind> dispatch line *)
  Alcotest.(check int) "line" 2 d.Lint_diag.line;
  Alcotest.(check string) "rule" "lifecycle" d.Lint_diag.rule;
  Alcotest.(check bool) "names the constructor" true
    (contains d.Lint_diag.msg "Proto.Pong")

let test_handler_gap_pragma_escape () =
  let pragma = "(* lint: allow-file lifecycle(Pong) \xe2\x80\x94 keepalive is one-sided here *)\n" in
  let s = src "lib/core/lcm_layer.ml" (fake_lcm ~pragma ~missing:"Pong" ()) in
  Alcotest.(check (list string)) "suppressed with a reasoned pragma" []
    (diag_strings (Check_proto.check [ s ]))

let test_decl_conformance () =
  (* A constructor the automaton does not know is flagged on its own line. *)
  let text =
    "type kind =\n"
    ^ String.concat "" (List.map (fun k -> "  | " ^ k ^ "\n") Check_auto.kind_names)
    ^ "  | Evil\n"
  in
  let ds = Check_proto.check [ src "lib/core/proto.ml" text ] in
  Alcotest.(check int) "one finding" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check int) "anchored at the new constructor" 13 d.Lint_diag.line;
  Alcotest.(check bool) "names it" true
    (contains d.Lint_diag.msg "Evil")

let test_ns_response_discipline () =
  (* Issuing Lookup without dispatching on R_addr (or R_error) is flagged. *)
  let text = "let q c = ask c Ns_proto.Lookup\n" in
  let ds = Check_proto.check [ src "lib/core/some_client.ml" text ] in
  Alcotest.(check int) "R_addr and R_error both missing" 2 (List.length ds);
  let clean = "let q c = match ask c Ns_proto.Lookup with\n\
               | Ns_proto.R_addr _ -> ()\n\
               | Ns_proto.R_error _ -> ()\n" in
  Alcotest.(check (list string)) "handled pair is clean" []
    (diag_strings (Check_proto.check [ src "lib/core/some_client.ml" clean ]))

(* --- seeded unguarded cycle (static) --- *)

let unguarded_commod =
  "let install () =\n\
  \  Lcm_layer.set_fault_oracle (fun dst ->\n\
  \    Nsp_layer.resolve dst)\n"

let fake_lcm_node = src "lib/core/lcm_layer.ml" "let transmit _ = ()\n"

let test_unguarded_cycle_detected () =
  let commod = src "lib/core/commod.ml" unguarded_commod in
  let nsp = src "lib/core/nsp_layer.ml" "let send x = Lcm_layer.transmit x\n" in
  let ds = Check_graph.check [ commod; nsp; fake_lcm_node ] in
  Alcotest.(check int) "one cycle" 1 (List.length ds);
  let d = List.hd ds in
  (* anchored at the first edge re-entering Lcm_layer from inside the cycle *)
  Alcotest.(check string) "file" "lib/core/commod.ml" d.Lint_diag.file;
  Alcotest.(check int) "line" 2 d.Lint_diag.line;
  Alcotest.(check string) "rule" "cycle" d.Lint_diag.rule;
  Alcotest.(check bool) "crosses into NSP" true
    (contains d.Lint_diag.msg "Nsp_layer")

let test_guarded_cycle_passes () =
  let commod = src "lib/core/commod.ml" unguarded_commod in
  let nsp =
    src "lib/core/nsp_layer.ml"
      "let send x = Recursion.guarded (fun () -> Lcm_layer.transmit x)\n"
  in
  Alcotest.(check (list string)) "Recursion in the cycle silences it" []
    (diag_strings (Check_graph.check [ commod; nsp; fake_lcm_node ]))

let test_hook_edges_exist () =
  (* The cycle above is only visible through the installed-callback edge:
     no direct reference leads from Lcm_layer anywhere. *)
  let commod = src "lib/core/commod.ml" unguarded_commod in
  let edges = Check_graph.graph [ commod; fake_lcm_node ] in
  Alcotest.(check bool) "Lcm_layer -> Commod (installer)" true
    (List.exists
       (fun e -> e.Check_graph.e_src = "Lcm_layer" && e.Check_graph.e_dst = "Commod")
       edges)

(* --- the lifecycle trace checker (dynamic) --- *)

let e at cat detail = { Ntcs_sim.Trace.at_us = at; cat; actor = "gw0"; detail }

let test_trace_legal_splice () =
  let good =
    [
      e 1 "gw.splice" "net0 label 7 <-> net1 label 8 dst=x";
      e 2 "gw.forward" "net0 label 7 -> net1 label 8 kind=data dst=x";
      e 3 "gw.close" "net0 label 7 <-> net1 label 8";
    ]
  in
  Alcotest.(check int) "legal lifecycle" 0 (List.length (Check_lifecycle.check good))

let test_trace_forward_after_close () =
  let bad =
    [
      e 1 "gw.splice" "net0 label 7 <-> net1 label 8 dst=x";
      e 2 "gw.close" "net0 label 7 <-> net1 label 8";
      e 3 "gw.forward" "net0 label 7 -> net1 label 8 kind=data dst=x";
    ]
  in
  let vs = Check_lifecycle.check bad in
  (* both legs of the splice report the §4.3 ordering violation *)
  Alcotest.(check int) "both legs flagged" 2 (List.length vs);
  List.iter
    (fun v ->
      Alcotest.(check string) "invariant" "lifecycle" v.Lint_trace.v_invariant;
      Alcotest.(check int) "at the forward" 3 v.Lint_trace.v_at_us)
    vs

let test_trace_forward_before_splice () =
  let bad = [ e 1 "gw.forward" "net0 label 7 -> net1 label 8 kind=data dst=x" ] in
  Alcotest.(check int) "traffic on unopened legs" 2
    (List.length (Check_lifecycle.check bad))

let test_trace_endpoint_lifecycle () =
  let m cat detail at = { Ntcs_sim.Trace.at_us = at; cat; actor = "m1"; detail } in
  let good =
    [
      m "ip.ivc_open_sent" "label 5 to a!b" 1;
      m "ip.ivc_open" "to a!b via 1 hop(s) label 5" 2;
      m "ip.ivc_close" "label 5 peer a!b local reason=shutdown" 3;
    ]
  in
  Alcotest.(check int) "legal endpoint lifecycle" 0 (List.length (Check_lifecycle.check good));
  let bad = good @ [ m "ip.ivc_reject" "label 5" 4 ] in
  let vs = Check_lifecycle.check bad in
  Alcotest.(check int) "reject while draining" 1 (List.length vs)

(* --- the explorer --- *)

let test_explorer_enumerates_all_orders () =
  let seen = Hashtbl.create 16 in
  let make () =
    let s = Ntcs_sim.Sched.create () in
    let order = Buffer.create 8 in
    List.iter
      (fun name ->
        ignore (Ntcs_sim.Sched.spawn ~name s (fun () -> Buffer.add_string order name)))
      [ "a"; "b"; "c" ];
    let body () =
      Ntcs_sim.Sched.run_until_quiescent s;
      Hashtbl.replace seen (Buffer.contents order) ();
      []
    in
    (s, body)
  in
  let o = Ntcs_sim.Explore.run ~make () in
  Alcotest.(check int) "3! schedules" 6 o.Ntcs_sim.Explore.schedules;
  Alcotest.(check bool) "exhaustive" false o.Ntcs_sim.Explore.truncated;
  Alcotest.(check int) "no failures" 0 (List.length o.Ntcs_sim.Explore.failures);
  Alcotest.(check int) "all 6 orders actually ran" 6 (Hashtbl.length seen)

let test_explorer_budget_truncates () =
  let make () =
    let s = Ntcs_sim.Sched.create () in
    List.iter
      (fun name -> ignore (Ntcs_sim.Sched.spawn ~name s (fun () -> ())))
      [ "a"; "b"; "c"; "d" ];
    (s, fun () -> Ntcs_sim.Sched.run_until_quiescent s; [])
  in
  let o = Ntcs_sim.Explore.run ~max_schedules:5 ~make () in
  Alcotest.(check bool) "truncated at the budget" true o.Ntcs_sim.Explore.truncated;
  Alcotest.(check int) "ran exactly the budget" 5 o.Ntcs_sim.Explore.schedules

let test_explorer_reports_failures () =
  let make () =
    let s = Ntcs_sim.Sched.create () in
    let order = Buffer.create 8 in
    List.iter
      (fun name ->
        ignore (Ntcs_sim.Sched.spawn ~name s (fun () -> Buffer.add_string order name)))
      [ "a"; "b" ];
    let body () =
      Ntcs_sim.Sched.run_until_quiescent s;
      if Buffer.contents order = "ba" then [ "b must not beat a" ] else []
    in
    (s, body)
  in
  let o = Ntcs_sim.Explore.run ~make () in
  Alcotest.(check int) "two schedules" 2 o.Ntcs_sim.Explore.schedules;
  (match o.Ntcs_sim.Explore.failures with
   | [ (path, msg) ] ->
     Alcotest.(check string) "the violation" "b must not beat a" msg;
     Alcotest.(check (list int)) "on the swapped schedule" [ 1 ] path
   | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs))

(* --- exhaustive exploration of the bounded scenarios --- *)

let explore_clean sc =
  let o = Check_scenarios.explore ~max_schedules:4000 sc in
  Alcotest.(check bool)
    (sc.Check_scenarios.sc_name ^ " exhaustive") false o.Ntcs_sim.Explore.truncated;
  Alcotest.(check bool)
    (sc.Check_scenarios.sc_name ^ " actually branched") true (o.Ntcs_sim.Explore.schedules >= 2);
  Alcotest.(check (list string))
    (sc.Check_scenarios.sc_name ^ " clean on every schedule") []
    (List.map snd o.Ntcs_sim.Explore.failures)

let test_first_send_all_schedules () = explore_clean Check_scenarios.first_send
let test_break_ns_all_schedules () = explore_clean Check_scenarios.break_ns

(* --- the repo itself conforms --- *)

let test_repo_conformant () =
  (* `dune build @check` enforces this too; asserting it here keeps the
     property visible in the unit suite (when run from the repo root). *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    Alcotest.(check (list string)) "no findings in lib/" []
      (diag_strings (Check.static_check [ "lib" ]));
    (* Non-vacuity: the real §6.3 loop (LCM -> fault oracle -> NSP -> LCM)
       is visible to the graph analysis — it passes because the Recursion
       guard is referenced inside the cycle, not because no cycle exists. *)
    let srcs = List.map Lint_lex.load (Lint.source_files [ "lib" ]) in
    let components = Check_graph.sccs (Check_graph.graph srcs) in
    Alcotest.(check bool) "the guarded NSP<->LCM cycle is seen" true
      (List.exists
         (fun scc ->
           List.length scc > 1
           && List.mem "Lcm_layer" scc
           && List.exists
                (fun m ->
                  match Lint_rules.rank_of m with Some r -> r >= 5 | None -> false)
                scc)
         components)
  end

let () =
  Alcotest.run "check"
    [
      ( "automaton",
        [
          Alcotest.test_case "structurally sound" `Quick test_automaton_sound;
          Alcotest.test_case "tables sized to the protocol" `Quick
            test_automaton_tables_cover_protocol;
        ] );
      ( "handlers",
        [
          Alcotest.test_case "gap detected at file:line" `Quick test_handler_gap_detected;
          Alcotest.test_case "pragma escape" `Quick test_handler_gap_pragma_escape;
          Alcotest.test_case "declaration conformance" `Quick test_decl_conformance;
          Alcotest.test_case "ns response discipline" `Quick test_ns_response_discipline;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "unguarded cycle detected" `Quick test_unguarded_cycle_detected;
          Alcotest.test_case "guarded cycle passes" `Quick test_guarded_cycle_passes;
          Alcotest.test_case "hook edges resolved" `Quick test_hook_edges_exist;
        ] );
      ( "lifecycle-trace",
        [
          Alcotest.test_case "legal splice" `Quick test_trace_legal_splice;
          Alcotest.test_case "forward after close" `Quick test_trace_forward_after_close;
          Alcotest.test_case "forward before splice" `Quick test_trace_forward_before_splice;
          Alcotest.test_case "endpoint lifecycle" `Quick test_trace_endpoint_lifecycle;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "enumerates all orders" `Quick test_explorer_enumerates_all_orders;
          Alcotest.test_case "budget truncates" `Quick test_explorer_budget_truncates;
          Alcotest.test_case "failures carry the path" `Quick test_explorer_reports_failures;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "first send, all schedules" `Slow test_first_send_all_schedules;
          Alcotest.test_case "ns break, all schedules" `Slow test_break_ns_all_schedules;
        ] );
      ("repo", [ Alcotest.test_case "lib/ conformant" `Quick test_repo_conformant ]);
    ]
