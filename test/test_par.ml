(* Domain-parallel world execution (DESIGN.md §14): scenario replication
   on real domains, worker-count determinism of the coupled barrier soak,
   choice-log record/replay, circuit namespacing, the shard-stable
   blocked-process report and the barrier's lookahead invariants. *)

open Ntcs_sim
module Config = World.Config

let scenarios = Check_scenarios.all @ Check_scenarios.faults

(* --- replication: every @check scenario, replicated on 2 domains ----- *)

let test_replication_all () =
  List.iter
    (fun sc ->
      let r = Check_par.replicate ~replicas:2 sc in
      Alcotest.(check (list string))
        (sc.Check_scenarios.sc_name ^ " solo violations") [] r.Check_par.rp_violations;
      Alcotest.(check (list int))
        (sc.Check_scenarios.sc_name ^ " divergent replicas") [] r.Check_par.rp_divergent)
    scenarios

(* qcheck: whatever (scenario, replica count) is drawn, replicas stay
   byte-identical to the solo run. *)
let prop_replication =
  QCheck.Test.make ~count:6 ~name:"replicas on domains are byte-identical"
    QCheck.(pair (int_bound (List.length scenarios - 1)) (int_range 1 3))
    (fun (i, replicas) ->
      let r = Check_par.replicate ~replicas (List.nth scenarios i) in
      not (Check_par.replication_failed r))

(* --- the coupled soak: workers matrix, spans, races, replay ---------- *)

let soak2 = lazy (Check_par.par_soak ~domains:2 ())
let soak4 = lazy (Check_par.par_soak ~domains:4 ())

let check_soak name (r : Check_par.par_report) ~domains =
  Alcotest.(check (list string)) (name ^ " divergences") [] r.Check_par.pr_divergences;
  Alcotest.(check int) (name ^ " race conflicts") 0 r.Check_par.pr_race_conflicts;
  Alcotest.(check int)
    (name ^ " span violations") 0
    (List.length r.Check_par.pr_span_violations);
  Alcotest.(check bool) (name ^ " epochs ran") true (r.Check_par.pr_epochs > 0);
  Alcotest.(check bool) (name ^ " choices recorded") true (r.Check_par.pr_choices > 0);
  (* The shard-stable teardown report: one blocked resident per shard,
     label-prefixed and sorted; the fault plane's victims died and the
     pumps ran to completion, so neither appears. *)
  Alcotest.(check (list string))
    (name ^ " blocked report")
    (List.init domains (fun i -> Printf.sprintf "s%d/resident" i))
    r.Check_par.pr_blocked

let test_soak_2 () = check_soak "2-shard" (Lazy.force soak2) ~domains:2
let test_soak_4 () = check_soak "4-shard" (Lazy.force soak4) ~domains:4

(* --- choice log record/replay on a plain sequential world ------------ *)

let replay_workload chooser =
  let w = World.create ~config:{ Config.default with Config.chooser } () in
  let s = World.sched w in
  for p = 1 to 3 do
    let actor = Printf.sprintf "p%d" p in
    ignore
      (Sched.spawn ~name:actor s (fun () ->
           for k = 1 to 5 do
             Sched.sleep s 1_000;
             World.record w ~cat:"par.tick" ~actor (string_of_int k)
           done))
  done;
  World.run ~until:10_000 w;
  (Format.asprintf "%a" Trace.dump (World.trace w), World.choice_log w)

let test_choice_replay () =
  (* Three processes wake at every same instant: a 3-owner tie the rotating
     chooser must break, and the recorded log must replay byte-for-byte. *)
  let rotate ~time ~owners = time / 1_000 mod Array.length owners in
  let chosen, log = replay_workload (Config.Choose rotate) in
  Alcotest.(check bool) "chooser consulted" true (log <> []);
  List.iter
    (fun (i, arity) ->
      Alcotest.(check bool) "choice within arity" true (i >= 0 && i < arity))
    log;
  let replayed, _ = replay_workload (Config.Replay (List.map fst log)) in
  Alcotest.(check string) "replay reproduces the bytes" chosen replayed;
  (* And the default world records no choices at all. *)
  let _, dlog = replay_workload Config.Default in
  Alcotest.(check int) "default records nothing" 0 (List.length dlog)

(* --- circuit namespacing --------------------------------------------- *)

let test_circuit_namespacing () =
  let p = World.Par.create { Config.default with Config.domains = 3 } in
  let ids =
    List.init 3 (fun i ->
        Ntcs_obs.Registry.fresh_circuit (World.obs (World.Par.shard p i)))
  in
  Alcotest.(check (list int)) "shard-strided circuit ids"
    [ 1; 1_000_001; 2_000_001 ] ids;
  (* Rebasing after allocation is a caller bug. *)
  (try
     Ntcs_obs.Registry.set_circuit_base (World.obs (World.Par.shard p 0)) 5;
     Alcotest.fail "set_circuit_base after allocation should raise"
   with Invalid_argument _ -> ());
  (* A 1-domain parallel world is the sequential world: no offset. *)
  let solo = World.Par.create { Config.default with Config.domains = 1 } in
  Alcotest.(check int) "solo shard unoffset" 1
    (Ntcs_obs.Registry.fresh_circuit (World.obs (World.Par.shard solo 0)))

(* --- barrier lookahead invariants ------------------------------------ *)

let test_barrier_invariants () =
  let p = World.Par.create ~quantum:1_000 { Config.default with Config.domains = 2 } in
  let b = World.Par.barrier p in
  (* A channel faster than the quantum would need events from an epoch
     still running on another domain. *)
  (try
     ignore (World.Par.chan p ~src:0 ~dst:1 ~latency:500 : unit Barrier.Chan.t);
     Alcotest.fail "latency < quantum should raise"
   with Invalid_argument _ -> ());
  (try
     Barrier.post b ~src:0 ~dst:1 ~arrival:500 (fun () -> ());
     Alcotest.fail "post inside the lookahead window should raise"
   with Invalid_argument _ -> ());
  (try
     ignore (World.Par.chan p ~src:0 ~dst:2 ~latency:2_000 : unit Barrier.Chan.t);
     Alcotest.fail "out-of-range shard should raise"
   with Invalid_argument _ -> ());
  (* At exactly the quantum the channel is legal. *)
  ignore (World.Par.chan p ~src:0 ~dst:1 ~latency:1_000 : unit Barrier.Chan.t)

(* --- shard labels in the blocked report ------------------------------ *)

let test_blocked_labels () =
  let w = World.create () in
  let s = World.sched w in
  ignore (Sched.spawn ~name:"zeta" s (fun () -> Sched.sleep s 1_000_000));
  ignore (Sched.spawn ~name:"alpha" s (fun () -> Sched.sleep s 1_000_000));
  World.run ~until:10 w;
  Alcotest.(check (list string)) "unlabelled, sorted" [ "alpha"; "zeta" ]
    (Sched.blocked_processes s);
  World.set_label w "s7";
  Alcotest.(check (list string)) "label-prefixed, sorted" [ "s7/alpha"; "s7/zeta" ]
    (Sched.blocked_processes s);
  Alcotest.(check string) "label readable" "s7" (World.label w)

(* --- Sched.Mode is the one mode record ------------------------------- *)

let test_mode () =
  Alcotest.(check bool) "default disarmed" false (Sched.Mode.armed Sched.Mode.default);
  Alcotest.(check bool) "any flag arms" true
    (Sched.Mode.armed { Sched.Mode.sanitize = true; races = false });
  Alcotest.(check string) "pp" "{sanitize=false; races=true}"
    (Format.asprintf "%a" Sched.Mode.pp { Sched.Mode.sanitize = false; races = true });
  let c = { Config.default with Config.sanitize = true } in
  Alcotest.(check bool) "Config.mode mirrors the record" true
    (Config.mode c).Sched.Mode.sanitize

let () =
  Alcotest.run "par"
    [
      ( "replication",
        [
          Alcotest.test_case "all scenarios x2 domains" `Slow test_replication_all;
          QCheck_alcotest.to_alcotest prop_replication;
        ] );
      ( "soak",
        [
          Alcotest.test_case "2 shards, workers 1/2/4" `Quick test_soak_2;
          Alcotest.test_case "4 shards, workers 1/2/4" `Quick test_soak_4;
        ] );
      ( "config",
        [
          Alcotest.test_case "choice log record/replay" `Quick test_choice_replay;
          Alcotest.test_case "mode record" `Quick test_mode;
        ] );
      ( "shards",
        [
          Alcotest.test_case "circuit namespacing" `Quick test_circuit_namespacing;
          Alcotest.test_case "barrier invariants" `Quick test_barrier_invariants;
          Alcotest.test_case "blocked-process labels" `Quick test_blocked_labels;
        ] );
    ]
