(* Shared scaffolding for the NTCS test suites. *)

open Ntcs

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" label (Errors.to_string e)

let check_err label expected = function
  | Ok _ -> Alcotest.failf "%s: expected error %s, got Ok" label (Errors.to_string expected)
  | Error e ->
    Alcotest.(check string) label (Errors.to_string expected) (Errors.to_string e)

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)
let raw_bytes b = Ntcs_wire.Convert.payload_raw b
let body env = Bytes.to_string env.Ali_layer.data

(* One TCP LAN: a VAX (NS host), a Sun and a second Sun. *)
let lan_cluster ?seed ?config ?tweak () =
  Cluster.build ?seed ?config ?tweak
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
      ]
    ~ns:"vax1" ()

(* TCP LAN + Apollo ring bridged by one prime gateway. *)
let two_net_cluster ?seed ?config ?tweak () =
  Cluster.build ?seed ?config ?tweak
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
        ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
        ("ap2", Ntcs_sim.Machine.Apollo, [ "ring" ]);
      ]
    ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
    ~ns:"vax1" ()

(* Three networks in a line, two gateways: lan1 -(gwA)- lan2 -(gwB)- ring. *)
let three_net_cluster ?seed ?config ?tweak () =
  Cluster.build ?seed ?config ?tweak
    ~nets:
      [
        ("lan1", Ntcs_sim.Net.Tcp_lan);
        ("lan2", Ntcs_sim.Net.Tcp_lan);
        ("ring", Ntcs_sim.Net.Mbx_ring);
      ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "lan1" ]);
        ("mid1", Ntcs_sim.Machine.Sun3, [ "lan1"; "lan2" ]);
        ("mid2", Ntcs_sim.Machine.Sun3, [ "lan2"; "ring" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "lan2" ]);
        ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
      ]
    ~gateways:[ ("gwA", "mid1", [ "lan1"; "lan2" ]); ("gwB", "mid2", [ "lan2"; "ring" ]) ]
    ~ns:"vax1" ()

(* Spawn an echo server named [name] on [machine]: replies "echo:<data>" to
   synchronous sends, counts messages into [hits] if given. *)
let spawn_echo ?(attrs = []) ?hits cluster ~machine ~name =
  ignore
    (Cluster.spawn cluster ~machine ~name (fun node ->
         match Commod.bind node ~name ~attrs with
         | Error e -> Alcotest.failf "echo %s bind failed: %s" name (Errors.to_string e)
         | Ok commod ->
           let rec loop () =
             (match Ali_layer.receive commod with
              | Ok env ->
                (match hits with Some r -> incr r | None -> ());
                if Ali_layer.expects_reply env then
                  ignore
                    (Ali_layer.reply commod env
                       (raw_bytes (Bytes.cat (Bytes.of_string "echo:") env.Ali_layer.data)))
              | Error _ -> ());
             loop ()
           in
           loop ()))

(* Run [f] in a fresh client process and return a lazy result cell; fails
   the test if the body never completed by the time the cell is read. *)
let in_process cluster ~machine ~name f =
  let cell = ref None in
  ignore
    (Cluster.spawn cluster ~machine ~name (fun node -> cell := Some (f node)));
  fun () ->
    match !cell with
    | Some v -> v
    | None -> Alcotest.failf "process %s did not complete" name

(* Bind a ComMod or fail the test. *)
let bind_exn node ~name = check_ok ("bind " ^ name) (Commod.bind node ~name)
