(* The observability plane (DESIGN.md §10): span contexts round-trip the
   wire, the registry sees every layer, the span log of a healthy run obeys
   the causal invariants, and the exporters are byte-deterministic — two
   equal-seed worlds serialize to identical JSON, which is what makes
   BENCH_obs.json and the Chrome trace usable as golden artifacts. *)

open Ntcs
module Span = Ntcs_obs.Span
module Registry = Ntcs_obs.Registry
module Export = Ntcs_obs.Export
module Histo = Ntcs_obs.Histo

(* --- span contexts --- *)

let test_span_strings () =
  let ctx = Span.make ~circuit:42 ~seq:7 in
  Alcotest.(check string) "to_string" "c42#7" (Span.to_string ctx);
  (match Span.of_string "c42#7" with
   | Some back -> Alcotest.(check bool) "of_string inverts" true (back = ctx)
   | None -> Alcotest.fail "of_string rejected well-formed input");
  Alcotest.(check bool) "none is none" true (Span.is_none Span.none);
  Alcotest.(check bool) "real ctx is not none" false (Span.is_none ctx);
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S malformed" s) true
        (Span.of_string s = None))
    [ ""; "c"; "c1"; "c#2"; "x1#2"; "c1#"; "c1#x" ]

let test_span_header_roundtrip () =
  let src = Addr.unique ~server_id:1 ~value:10 in
  let dst = Addr.unique ~server_id:1 ~value:11 in
  let span = Span.make ~circuit:12345 ~seq:678 in
  let h =
    Proto.make_header ~kind:Proto.Data ~src ~dst ~seq:9 ~conv:3 ~span ~payload_len:4 ()
  in
  let h', payload = Proto.decode_frame (Proto.encode_frame h (Bytes.of_string "abcd")) in
  Alcotest.(check bool) "span survives the wire" true (h'.Proto.span = span);
  Alcotest.(check string) "payload intact" "abcd" (Bytes.to_string payload);
  (* The default header carries the null context. *)
  let plain = Proto.make_header ~kind:Proto.Ping ~src ~dst ~payload_len:0 () in
  let plain', _ = Proto.decode_frame (Proto.encode_frame plain Bytes.empty) in
  Alcotest.(check bool) "default is none" true (Span.is_none plain'.Proto.span)

(* --- histograms --- *)

let test_histo_basics () =
  let h = Histo.create () in
  Alcotest.(check bool) "fresh is empty" true (Histo.is_empty h);
  List.iter (Histo.add h) [ 0; 1; 2; 3; 10; 100; 1000; 1000 ];
  Alcotest.(check int) "count" 8 (Histo.count h);
  Alcotest.(check int) "sum" 2116 (Histo.sum h);
  Alcotest.(check int) "min" 0 (Histo.min_value h);
  Alcotest.(check int) "max" 1000 (Histo.max_value h);
  Alcotest.(check bool) "p50 <= p95" true (Histo.p50 h <= Histo.p95 h);
  Alcotest.(check bool) "p95 <= p99" true (Histo.p95 h <= Histo.p99 h);
  Alcotest.(check int) "p99 clamps to observed max" 1000 (Histo.p99 h);
  (* Small exact buckets: single-sample histograms answer exactly. *)
  let one = Histo.create () in
  Histo.add one 3;
  Alcotest.(check int) "exact small bucket" 3 (Histo.p50 one)

(* --- the measured workload: two equal-seed worlds --- *)

let run_world seed =
  let c = Helpers.two_net_cluster ~seed () in
  Cluster.settle c;
  Helpers.spawn_echo c ~machine:"ap1" ~name:"svc";
  Cluster.settle c;
  (* Client on the ethernet, service on the ring: every call crosses the
     prime gateway, so the span log carries gw.forward hops. *)
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = Helpers.bind_exn node ~name:"client" in
         let addr = Helpers.check_ok "locate" (Ali_layer.locate commod "svc") in
         for _ = 1 to 5 do
           ignore (Ali_layer.send_sync commod ~dst:addr (Helpers.raw "ping"))
         done;
         ignore (Ali_layer.send_dgram commod ~dst:addr (Helpers.raw "dg"))));
  Cluster.settle ~dt:30_000_000 c;
  Cluster.metrics c

let test_registry_sees_layers () =
  let r = run_world 1234 in
  let has name =
    Alcotest.(check bool) (name ^ " histogram populated") true
      (match Registry.find_histo r name with
       | Some h -> not (Histo.is_empty h)
       | None -> false)
  in
  has "lcm.send_sync_us";
  has "ip.open_us";
  has "nsp.request_us";
  has "nd.tx_bytes";
  has "nd.rx_bytes";
  has "net.frame_bytes";
  Alcotest.(check bool) "circuits allocated" true (Registry.circuits_allocated r > 0);
  Alcotest.(check bool) "span events recorded" true (Registry.span_count r > 0);
  (* The gateway hop shows up as an instant event on a message span. *)
  Alcotest.(check bool) "gateway forward span seen" true
    (List.exists (fun (e : Span.event) -> e.Span.ev_name = "gw.forward") (Registry.spans r))

let test_healthy_run_span_invariants () =
  let r = run_world 99 in
  match Check_spans.check (Registry.spans r) with
  | [] -> ()
  | vs ->
    Alcotest.failf "span invariants violated: %s"
      (String.concat "; "
         (List.map (fun v -> Format.asprintf "%a" Lint_trace.pp_violation v) vs))

let test_exports_deterministic () =
  let r1 = run_world 777 in
  let r2 = run_world 777 in
  Alcotest.(check string) "stats_json byte-identical"
    (Export.stats_json r1) (Export.stats_json r2);
  Alcotest.(check string) "spans_jsonl byte-identical"
    (Export.spans_jsonl r1) (Export.spans_jsonl r2);
  Alcotest.(check string) "chrome trace byte-identical (golden)"
    (Export.chrome_trace r1) (Export.chrome_trace r2);
  (* A different seed must still be a valid export but may differ. *)
  let r3 = run_world 778 in
  Alcotest.(check bool) "different seed differs" true
    (Export.spans_jsonl r1 <> Export.spans_jsonl r3)

let test_chrome_trace_shape () =
  let r = run_world 4242 in
  let trace = Export.chrome_trace r in
  let contains needle =
    let nl = String.length needle and hl = String.length trace in
    let rec go i = i + nl <= hl && (String.sub trace i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "trace contains %s" needle) true (go 0)
  in
  contains "\"traceEvents\":[";
  contains "\"displayTimeUnit\":\"ms\"";
  contains "\"thread_name\"";
  contains "\"ph\":\"B\"";
  contains "\"ph\":\"E\"";
  contains "\"ph\":\"i\"";
  contains "circuit 1"

let test_stats_json_has_percentiles () =
  let r = run_world 5150 in
  let js = Export.stats_json r in
  let contains needle =
    let nl = String.length needle and hl = String.length js in
    let rec go i = i + nl <= hl && (String.sub js i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "stats contains %s" needle) true (go 0)
  in
  contains "\"lcm.send_sync_us\":{";
  contains "\"p50\":";
  contains "\"p95\":";
  contains "\"p99\":"

let () =
  Alcotest.run "obs"
    [
      ("span", [
        Alcotest.test_case "ctx string forms" `Quick test_span_strings;
        Alcotest.test_case "header roundtrip" `Quick test_span_header_roundtrip;
      ]);
      ("histo", [ Alcotest.test_case "basics" `Quick test_histo_basics ]);
      ("world", [
        Alcotest.test_case "registry sees every layer" `Quick test_registry_sees_layers;
        Alcotest.test_case "healthy-run span invariants" `Quick
          test_healthy_run_span_invariants;
      ]);
      ("export", [
        Alcotest.test_case "equal seeds, identical bytes" `Quick test_exports_deterministic;
        Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
        Alcotest.test_case "stats carries percentiles" `Quick
          test_stats_json_has_percentiles;
      ]);
    ]
