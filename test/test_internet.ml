(* The portable internet scheme (§4): chained IVCs through gateways, routing
   from naming-service topology, multi-hop chains, cascade teardown on
   gateway failure, and the properties behind experiment E7. *)

open Ntcs
open Helpers

let test_cross_net_conversation () =
  let c = two_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"ring-svc";
  Cluster.settle ~dt:5_000_000 c;
  let result =
    in_process c ~machine:"vax1" ~name:"lan-client" (fun node ->
        let commod = bind_exn node ~name:"lan-client" in
        let addr = check_ok "locate across nets" (Ali_layer.locate commod "ring-svc") in
        let env =
          check_ok "sync across gateway"
            (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "x-net"))
        in
        body env)
  in
  Cluster.settle ~dt:20_000_000 c;
  Alcotest.(check string) "reply crossed back" "echo:x-net" (result ());
  let m = Cluster.metrics c in
  Alcotest.(check bool) "gateway forwarded traffic" true
    (Ntcs_util.Metrics.get m "gw.forwards" > 0);
  Alcotest.(check bool) "chain was spliced" true (Ntcs_util.Metrics.get m "gw.opens" > 0)

let test_two_hop_chain () =
  let c = three_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"far-svc";
  Cluster.settle ~dt:5_000_000 c;
  let result =
    in_process c ~machine:"vax1" ~name:"client" (fun node ->
        let commod = bind_exn node ~name:"client" in
        let addr = check_ok "locate 2 hops away" (Ali_layer.locate commod "far-svc") in
        let env =
          check_ok "sync over 2 gateways"
            (Ali_layer.send_sync commod ~dst:addr ~timeout_us:15_000_000 (raw "deep"))
        in
        body env)
  in
  Cluster.settle ~dt:30_000_000 c;
  Alcotest.(check string) "echo over two hops" "echo:deep" (result ());
  (* Both gateways must have spliced a leg. *)
  Alcotest.(check bool) "both gateways spliced" true
    (List.for_all (fun gw -> Gateway.splice_count gw > 0) (Cluster.gateway_list c))

let test_direct_traffic_skips_gateway () =
  let c = two_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"ring-svc";
  Cluster.settle ~dt:5_000_000 c;
  let m = Cluster.metrics c in
  let forwards_before = Ntcs_util.Metrics.get m "gw.forwards" in
  let result =
    in_process c ~machine:"ap2" ~name:"ring-client" (fun node ->
        let commod = bind_exn node ~name:"ring-client" in
        let addr = check_ok "locate" (Ali_layer.locate commod "ring-svc") in
        let env = check_ok "local sync" (Ali_layer.send_sync commod ~dst:addr (raw "near")) in
        body env)
  in
  Cluster.settle ~dt:10_000_000 c;
  Alcotest.(check string) "local echo" "echo:near" (result ());
  (* Local traffic between ring modules uses a single LVC: no new gateway
     data forwarding beyond the client's own NS conversation. The server
     conversation itself must not traverse the gateway: assert that the
     direct circuit exists by checking the metric stayed close. *)
  let forwards_after = Ntcs_util.Metrics.get m "gw.forwards" in
  (* The client still registers via the gateway (NS is on the LAN); allow
     that but require the echo exchange itself to add no data forwards:
     registration+locate account for <= 8 forwarded frames. *)
  Alcotest.(check bool) "echo stayed on the ring" true (forwards_after - forwards_before <= 8)

let test_no_inter_gateway_protocol () =
  (* §4.2: "no inter-gateway communication ever takes place" outside the
     circuit chains themselves. With a single gateway there is trivially no
     peer; with two gateways on disjoint paths, neither ever opens a circuit
     to the other unless a chain passes through both. Here both bridges
     bridge the same two nets; traffic to the ring needs exactly one. *)
  let c =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge1", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("bridge2", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
        ]
      ~gateways:[ ("gw1", "bridge1", [ "ether"; "ring" ]); ("gw2", "bridge2", [ "ether"; "ring" ]) ]
      ~ns:"vax1" ()
  in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"svc";
  Cluster.settle ~dt:5_000_000 c;
  ignore
    ((in_process c ~machine:"vax1" ~name:"client" (fun node ->
          let commod = bind_exn node ~name:"client" in
          let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
          ignore
            (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "q")));
          ()))
       : unit -> unit);
  Cluster.settle ~dt:20_000_000 c;
  (* No gateway ComMod ever opened a circuit to another gateway's ComMod:
     check the ND trace for opens between gw-owned modules. *)
  let entries = Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"nd.open" in
  let is_gw_actor e =
    String.length e.Ntcs_sim.Trace.actor >= 3 && String.sub e.Ntcs_sim.Trace.actor 0 3 = "gw/"
  in
  let gw_to_gw =
    List.filter
      (fun e ->
        is_gw_actor e
        && (let detail = e.Ntcs_sim.Trace.detail in
            (* gateway opening toward a well-known gateway address U9xx.* *)
            String.length detail > 1 && String.sub detail 0 2 = "U9"))
      entries
  in
  Alcotest.(check int) "no gateway-to-gateway circuits" 0 (List.length gw_to_gw)

let test_gateway_death_cascades () =
  (* §4.3: killing the gateway machine mid-conversation tears the chain down
     and the originating end observes the failure. *)
  let c = two_net_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"ring-svc";
  Cluster.settle ~dt:5_000_000 c;
  let outcome = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "ring-svc") in
         ignore
           (check_ok "first sync ok"
              (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "one")));
         (* Wait for the bridge to be crashed, then try again. *)
         Ntcs_sim.Sched.sleep (Node.sched node) 10_000_000;
         outcome := Some (Ali_layer.send_sync commod ~dst:addr ~timeout_us:3_000_000 (raw "two"))));
  Cluster.settle ~dt:5_000_000 c;
  Cluster.crash c "bridge";
  Cluster.settle ~dt:40_000_000 c;
  match !outcome with
  | None -> Alcotest.fail "client did not finish"
  | Some (Ok _) -> Alcotest.fail "conversation should have failed with the only bridge down"
  | Some (Error e) ->
    Alcotest.(check bool) "failure surfaced upward" true
      (match e with
       | Errors.Circuit_failed | Errors.Unreachable | Errors.Timeout
       | Errors.Destination_dead | Errors.Name_service_unavailable -> true
       | _ -> false)

let test_alternate_gateway_survives_failure () =
  (* Two bridges between the same nets: after one dies, new circuits route
     through the survivor (the naming service's topology heals routing). *)
  let c =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge1", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("bridge2", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
        ]
      ~gateways:[ ("gw1", "bridge1", [ "ether"; "ring" ]); ("gw2", "bridge2", [ "ether"; "ring" ]) ]
      ~ns:"vax1" ()
  in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"svc";
  Cluster.settle ~dt:5_000_000 c;
  let outcome = ref None in
  ignore
    (Cluster.spawn c ~machine:"vax1" ~name:"client" (fun node ->
         let commod = bind_exn node ~name:"client" in
         let addr = check_ok "locate" (Ali_layer.locate commod "svc") in
         ignore
           (check_ok "warm"
              (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "one")));
         Ntcs_sim.Sched.sleep (Node.sched node) 10_000_000;
         (* First attempt may fail while the break is detected; retry once. *)
         let second = Ali_layer.send_sync commod ~dst:addr ~timeout_us:5_000_000 (raw "two") in
         let second =
           match second with
           | Ok _ -> second
           | Error _ -> Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "two")
         in
         outcome := Some second));
  Cluster.settle ~dt:5_000_000 c;
  Cluster.crash c "bridge1";
  Cluster.settle ~dt:60_000_000 c;
  match !outcome with
  | None -> Alcotest.fail "client did not finish"
  | Some (Error e) -> Alcotest.failf "no failover through second bridge: %s" (Errors.to_string e)
  | Some (Ok env) -> Alcotest.(check string) "failover echo" "echo:two" (body env)

let test_hops_recorded () =
  (* The header's hop counter feeds E7: direct = 0, one gateway = 2 legs but
     the hop field counts gateway transits. *)
  let c = three_net_cluster () in
  Cluster.settle c;
  (* A server that reports the hop count it observed. *)
  ignore
    (Cluster.spawn c ~machine:"ap1" ~name:"hopsvc" (fun node ->
         let commod = bind_exn node ~name:"hopsvc" in
         let lcm = Commod.lcm commod in
         let rec loop () =
           (match Lcm_layer.recv lcm with
            | Ok env when env.Lcm_layer.conv <> 0 ->
              ignore (Lcm_layer.reply lcm env (raw "ok" |> fun p -> p))
            | Ok _ | Error _ -> ());
           loop ()
         in
         loop ()));
  Cluster.settle ~dt:5_000_000 c;
  let m = Cluster.metrics c in
  ignore
    ((in_process c ~machine:"vax1" ~name:"client" (fun node ->
          let commod = bind_exn node ~name:"client" in
          let addr = check_ok "locate" (Ali_layer.locate commod "hopsvc") in
          ignore
            (check_ok "sync" (Ali_layer.send_sync commod ~dst:addr ~timeout_us:15_000_000 (raw "h")));
          ()))
       : unit -> unit);
  Cluster.settle ~dt:30_000_000 c;
  (* Two gateways each forwarded the request and the reply at least once. *)
  Alcotest.(check bool) "gateway forwards counted" true
    (Ntcs_util.Metrics.get m "gw.forwards" >= 4)

let () =
  Alcotest.run "internet"
    [
      ( "chaining",
        [
          Alcotest.test_case "cross-net conversation" `Quick test_cross_net_conversation;
          Alcotest.test_case "two-hop chain" `Quick test_two_hop_chain;
          Alcotest.test_case "direct traffic skips gateway" `Quick
            test_direct_traffic_skips_gateway;
          Alcotest.test_case "hops recorded" `Quick test_hops_recorded;
        ] );
      ( "topology",
        [ Alcotest.test_case "no inter-gateway protocol" `Quick test_no_inter_gateway_protocol ]
      );
      ( "failure",
        [
          Alcotest.test_case "gateway death cascades" `Quick test_gateway_death_cascades;
          Alcotest.test_case "alternate gateway failover" `Quick
            test_alternate_gateway_survives_failure;
        ] );
    ]
