(* The distributed run-time support stack in action (§1.2, §6.1): a time
   server correcting drifting clocks, a network monitor watching every
   module's traffic, and an error log — all of them ordinary modules that
   both serve the NTCS and communicate through it (the recursion of §6).

   Run with: dune exec examples/drts_services.exe *)

open Ntcs

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

let () =
  (* sun1's clock runs 400 ppm fast and starts 250 ms ahead; sun2 lags. *)
  let cluster =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~clocks:[ ("sun1", 400., 250_000); ("sun2", -300., -120_000) ]
      ~ns:"vax1" ()
  in
  Cluster.settle cluster;

  (* The DRTS services: reference clock on the VAX, monitor + log on sun2. *)
  ignore (Cluster.spawn cluster ~machine:"vax1" ~name:"time-server" (fun node ->
            Ntcs_drts.Time_service.serve node ()));
  ignore (Cluster.spawn cluster ~machine:"sun2" ~name:"monitor" (fun node ->
            Ntcs_drts.Monitor.serve node ()));
  ignore (Cluster.spawn cluster ~machine:"sun2" ~name:"error-log" (fun node ->
            Ntcs_drts.Error_log.serve node ()));
  (* An ordinary service to talk to. *)
  ignore (Cluster.spawn cluster ~machine:"sun2" ~name:"echo" (fun node ->
            match Commod.bind node ~name:"echo" with
            | Error _ -> ()
            | Ok commod ->
              let rec loop () =
                (match Ali_layer.receive commod with
                 | Ok env when Ali_layer.expects_reply env ->
                   ignore (Ali_layer.reply commod env (raw "pong"))
                 | _ -> ());
                loop ()
              in
              loop ()));
  Cluster.settle cluster;

  (* A monitored application on the drifting sun1. *)
  let monitored =
    { (Cluster.config cluster) with Node.monitoring = true; timestamps = true }
  in
  ignore
    (Cluster.spawn cluster ~config:monitored ~machine:"sun1" ~name:"app" (fun node ->
         match Commod.bind node ~name:"app" with
         | Error e -> Printf.printf "bind failed: %s\n" (Errors.to_string e)
         | Ok commod ->
           (* Wire the DRTS hooks into the node: timestamps now come from the
              corrector, events flow to the monitor. *)
           let corrector = Ntcs_drts.Time_service.create commod in
           Ntcs_drts.Time_service.install corrector;
           Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod);
           let log = Ntcs_drts.Error_log.create_client commod in

           Printf.printf "raw clock error before sync: %+d us\n"
             (Ntcs_drts.Time_service.true_error_us corrector);
           ignore (Ntcs_drts.Time_service.sync corrector);
           Printf.printf "clock error after one sync:  %+d us\n"
             (Ntcs_drts.Time_service.true_error_us corrector);

           (* Ordinary traffic — every send is now monitored with corrected
              timestamps (the §6.1 recursion happening live). *)
           (match Ali_layer.locate commod "echo" with
            | Error _ -> ()
            | Ok addr ->
              for i = 1 to 5 do
                match Ali_layer.send_sync commod ~dst:addr (raw "ping") with
                | Ok _ -> ()
                | Error e ->
                  Ntcs_drts.Error_log.log log Ntcs_drts.Drts_proto.Error
                    (Printf.sprintf "ping %d failed: %s" i (Errors.to_string e))
              done);
           Ntcs_drts.Error_log.log log Ntcs_drts.Drts_proto.Info "run complete";
           Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000;

           (* Query both services. *)
           (match Ali_layer.locate commod Ntcs_drts.Monitor.monitor_name with
            | Error _ -> ()
            | Ok monitor -> (
              match Ntcs_drts.Monitor.query_stats commod ~monitor with
              | Error _ -> ()
              | Ok stats ->
                Printf.printf "\nmonitor saw %d events:\n" stats.Ntcs_drts.Drts_proto.ms_total;
                List.iter
                  (fun (k, n) -> Printf.printf "  %-12s %d\n" k n)
                  stats.Ntcs_drts.Drts_proto.ms_by_kind));
           (match Ali_layer.locate commod Ntcs_drts.Error_log.log_name with
            | Error _ -> ()
            | Ok log_addr -> (
              match Ntcs_drts.Error_log.query_recent commod ~log_addr ~n:5 with
              | Error _ -> ()
              | Ok records ->
                Printf.printf "\nerror log (%d records):\n" (List.length records);
                List.iter
                  (fun r ->
                    Printf.printf "  [%s] %s: %s\n"
                      (Ntcs_drts.Drts_proto.severity_to_string r.Ntcs_drts.Drts_proto.lr_severity)
                      r.Ntcs_drts.Drts_proto.lr_module r.Ntcs_drts.Drts_proto.lr_message)
                  records));
           let entries, recursive, depth = Ali_layer.recursion_stats commod in
           Printf.printf
             "\nComMod recursion (§6.1): %d entries, %d recursive, max depth %d\n"
             entries recursive depth));
  Cluster.settle ~dt:60_000_000 cluster
