(* Quickstart: bring up an NTCS installation, register two modules, locate
   one from the other and talk — asynchronously and synchronously.

   Run with: dune exec examples/quickstart.exe *)

open Ntcs

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

let () =
  (* A world: one Ethernet, a VAX hosting the name server, and a Sun. *)
  let cluster =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~ns:"vax1" ()
  in
  Cluster.settle cluster;

  (* A greeter service. Binding a ComMod registers the module's logical name
     with the naming service (§3.2); after that, anyone can locate it. *)
  ignore
    (Cluster.spawn cluster ~machine:"sun1" ~name:"greeter" (fun node ->
         match Commod.bind node ~name:"greeter" with
         | Error e -> Printf.printf "greeter failed to bind: %s\n" (Errors.to_string e)
         | Ok commod ->
           Printf.printf "[greeter] up as %s\n"
             (Addr.to_string (Commod.my_addr commod));
           let rec serve () =
             (match Ali_layer.receive commod with
              | Ok env ->
                let text = Bytes.to_string env.Ali_layer.data in
                Printf.printf "[greeter] got %S from %s\n" text
                  (Addr.to_string env.Ali_layer.src);
                if Ali_layer.expects_reply env then
                  ignore (Ali_layer.reply commod env (raw ("hello, " ^ text)))
              | Error _ -> ());
             serve ()
           in
           serve ()));

  (* A client on the other machine. Note the paper's contract: the client
     obtains the address once; everything after that is location
     transparent. *)
  ignore
    (Cluster.spawn cluster ~machine:"vax1" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error e -> Printf.printf "client failed to bind: %s\n" (Errors.to_string e)
         | Ok commod -> (
           match Ali_layer.locate commod "greeter" with
           | Error e -> Printf.printf "locate failed: %s\n" (Errors.to_string e)
           | Ok addr ->
             Printf.printf "[client]  located greeter at %s\n" (Addr.to_string addr);
             (* Asynchronous send: fire and forget. *)
             (match Ali_layer.send commod ~dst:addr (raw "async world") with
              | Ok () -> print_endline "[client]  async send accepted"
              | Error e -> Printf.printf "send failed: %s\n" (Errors.to_string e));
             (* Synchronous conversation: send / receive / reply. *)
             (match Ali_layer.send_sync commod ~dst:addr (raw "sync world") with
              | Ok env ->
                Printf.printf "[client]  reply: %S\n" (Bytes.to_string env.Ali_layer.data)
              | Error e -> Printf.printf "send_sync failed: %s\n" (Errors.to_string e)))));

  (* Run the virtual world forward. *)
  Cluster.settle ~dt:10_000_000 cluster;
  Printf.printf "done at t=%dus (virtual)\n" (Ntcs_sim.World.now (Cluster.world cluster))
