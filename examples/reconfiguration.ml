(* Dynamic reconfiguration, the URSA testbed's signature requirement: replace
   a running module with a new generation on a different machine, while a
   client keeps a conversation going. The client resolves the name exactly
   once; the handoff is invisible at its interface (§3.5).

   Run with: dune exec examples/reconfiguration.exe *)

open Ntcs

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

let version_spec tag =
  {
    Ntcs_drts.Process_ctl.sp_name = "stock-quoter";
    sp_attrs = [ ("service", "quotes") ];
    sp_body =
      (fun commod ->
        Printf.printf "[quoter %s] serving as %s\n" tag
          (Addr.to_string (Commod.my_addr commod));
        let n = ref 0 in
        let rec loop () =
          (match Ali_layer.receive commod with
           | Ok env when Ali_layer.expects_reply env ->
             incr n;
             let quote = Printf.sprintf "URSA @ %d.%02d (%s #%d)" (40 + !n) (7 * !n mod 100) tag !n in
             ignore (Ali_layer.reply commod env (raw quote))
           | Ok _ | Error _ -> ());
          loop ()
        in
        loop ());
  }

let () =
  let cluster =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~ns:"vax1" ()
  in
  Cluster.settle cluster;
  let pctl = Ntcs_drts.Process_ctl.create cluster in
  let managed =
    Ntcs_drts.Process_ctl.start pctl (version_spec "v1/sun1") ~machine:"sun1"
  in
  Cluster.settle cluster;

  ignore
    (Cluster.spawn cluster ~machine:"vax1" ~name:"ticker" (fun node ->
         match Commod.bind node ~name:"ticker" with
         | Error e -> Printf.printf "bind failed: %s\n" (Errors.to_string e)
         | Ok commod -> (
           match Ali_layer.locate commod "stock-quoter" with
           | Error e -> Printf.printf "locate failed: %s\n" (Errors.to_string e)
           | Ok addr ->
             Printf.printf "[ticker] resolved stock-quoter once: %s\n"
               (Addr.to_string addr);
             for i = 1 to 12 do
               (match
                  Ali_layer.send_sync commod ~dst:addr ~timeout_us:2_000_000 (raw "quote?")
                with
                | Ok env ->
                  Printf.printf "[ticker] tick %2d -> %s\n" i
                    (Bytes.to_string env.Ali_layer.data)
                | Error e ->
                  Printf.printf "[ticker] tick %2d -> error: %s\n" i (Errors.to_string e));
               Ntcs_sim.Sched.sleep (Node.sched node) 500_000
             done)));

  (* Upgrade the quoter to v2 on another machine, mid-conversation. *)
  Ntcs_sim.Sched.after (Cluster.sched cluster) 5_000_000 (fun () ->
      print_endline "[operator] relocating stock-quoter to sun2 (v2)...";
      ignore
        (Ntcs_drts.Process_ctl.relocate pctl
           { managed with Ntcs_drts.Process_ctl.m_spec = version_spec "v2/sun2" }
           ~to_machine:"sun2"));

  Cluster.settle ~dt:30_000_000 cluster;
  Printf.printf "[operator] address faults: %d, relocations: %d — ticker never noticed\n"
    (Ntcs_util.Metrics.get (Cluster.metrics cluster) "lcm.addr_faults")
    (Ntcs_util.Metrics.get (Cluster.metrics cluster) "lcm.relocations")
