(* Heterogeneous data conversion (§5): the same typed message sent VAX->VAX
   travels as a raw byte copy (image mode), and VAX->Sun as a converted
   character stream (packed mode). The application describes the structure
   once; the NTCS picks the mode at the lowest layer, per destination.

   Also demonstrates what the machinery prevents: reinterpreting a VAX
   memory image with Sun byte order garbles every integer.

   Run with: dune exec examples/heterogeneous.exe *)

open Ntcs
open Ntcs_wire

(* The application's message structure definition — one description yields
   both the native image layout and the generated pack/unpack codec. *)
module Sensor_msg = struct
  type t = { station : string; reading : int; scale : int }

  let app_tag = 7
  let layout = Layout.[ F_char_array 12; F_i32; F_i16 ]

  let to_values v = Layout.[ V_str v.station; V_int v.reading; V_int v.scale ]

  let of_values = function
    | Layout.[ V_str station; V_int reading; V_int scale ] -> { station; reading; scale }
    | _ -> invalid_arg "sensor message shape"
end

let () =
  (* First, the hazard in isolation: image bytes across byte orders. *)
  let img =
    Layout.encode ~order:Endian.Le [ Layout.F_i32 ] [ Layout.V_int 76543 ]
  in
  (match Layout.decode ~order:Endian.Be [ Layout.F_i32 ] img with
   | [ Layout.V_int garbled ] ->
     Printf.printf "a VAX writes 76543; a Sun reading the raw image sees %d\n\n" garbled
   | _ -> ());

  let cluster =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("vax2", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~ns:"vax1" ()
  in
  Cluster.settle cluster;

  let readings = Queue.create () in
  let receiver machine name =
    ignore
      (Cluster.spawn cluster ~machine ~name (fun node ->
           match Commod.bind node ~name with
           | Error _ -> ()
           | Ok commod -> (
             match Ali_layer.receive commod with
             | Ok env -> (
               match Typed_msg.decode (module Sensor_msg) commod env with
               | Ok v ->
                 Queue.push
                   (Printf.sprintf "[%s] station=%s reading=%d scale=%d (arrived in %s mode)"
                      name v.Sensor_msg.station v.Sensor_msg.reading v.Sensor_msg.scale
                      (Convert.mode_to_string env.Ali_layer.mode))
                   readings
               | Error e -> Printf.printf "[%s] decode failed: %s\n" name (Errors.to_string e))
             | Error _ -> ())))
  in
  receiver "vax2" "vax-receiver";
  receiver "sun1" "sun-receiver";
  Cluster.settle cluster;

  ignore
    (Cluster.spawn cluster ~machine:"vax1" ~name:"sensor" (fun node ->
         match Commod.bind node ~name:"sensor" with
         | Error _ -> ()
         | Ok commod ->
           let send_to name =
             match Ali_layer.locate commod name with
             | Error e -> Printf.printf "locate %s: %s\n" name (Errors.to_string e)
             | Ok addr ->
               ignore
                 (Typed_msg.send (module Sensor_msg) commod ~dst:addr
                    { Sensor_msg.station = "utah-42"; reading = 76543; scale = -2 })
           in
           send_to "vax-receiver";
           send_to "sun-receiver"));

  Cluster.settle ~dt:20_000_000 cluster;
  Queue.iter print_endline readings;
  let m = Cluster.metrics cluster in
  Printf.printf "\nconversions by the sensor: image=%d packed=%d — no needless work\n"
    (Ntcs_util.Metrics.get m "conv.image_msgs.sensor")
    (Ntcs_util.Metrics.get m "conv.packed_msgs.sensor")
