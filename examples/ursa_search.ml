(* The paper's motivating application: a distributed information-retrieval
   system. Index and document servers live on Apollo workstations on an MBX
   ring; the search coordinator and the user's host processor are on an
   Ethernet; a gateway bridges the two. Every arrow in that picture is NTCS
   message passing — the application never mentions machines or networks.

   Run with: dune exec examples/ursa_search.exe *)

open Ntcs

let () =
  let cluster =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ("ap2", Ntcs_sim.Machine.Apollo, [ "ring" ]);
        ]
      ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
      ~ns:"vax1" ()
  in
  Cluster.settle cluster;

  (* 120 documents, 4 partitions, backends on the ring. *)
  let corpus = Ursa.Corpus.generate 120 in
  Ursa.Host.deploy cluster ~machines:[ "ap1"; "ap2" ] ~partitions:4 ~corpus
    ~search_machine:"vax1";
  Cluster.settle ~dt:20_000_000 cluster;

  ignore
    (Cluster.spawn cluster ~machine:"vax1" ~name:"user" (fun node ->
         match Commod.bind node ~name:"user" with
         | Error e -> Printf.printf "bind failed: %s\n" (Errors.to_string e)
         | Ok commod ->
           let host = Ursa.Host.create commod in
           let queries =
             [ "network transparent message"; "gateway routing"; "index ranking" ]
           in
           List.iter
             (fun q ->
               Printf.printf "\nquery: %S\n" q;
               match Ursa.Host.search ~k:3 ~timeout_us:30_000_000 host q with
               | Error e -> Printf.printf "  search failed: %s\n" (Errors.to_string e)
               | Ok reply ->
                 Printf.printf "  %d partitions answered\n"
                   reply.Ursa.Ursa_msg.sr_partitions;
                 List.iter
                   (fun hit ->
                     match Ursa.Host.fetch host ~doc:hit.Ursa.Ursa_msg.h_doc with
                     | Ok (title, body) ->
                       Printf.printf "  doc %3d  score %5d  %-24s %s...\n"
                         hit.Ursa.Ursa_msg.h_doc hit.Ursa.Ursa_msg.h_score_milli title
                         (String.sub body 0 (min 42 (String.length body)))
                     | Error e ->
                       Printf.printf "  doc %3d  fetch failed: %s\n"
                         hit.Ursa.Ursa_msg.h_doc (Errors.to_string e))
                   reply.Ursa.Ursa_msg.sr_hits)
             queries));
  Cluster.settle ~dt:120_000_000 cluster;
  let m = Cluster.metrics cluster in
  Printf.printf
    "\nNTCS work underneath: %d frames sent, %d gateway forwards, %d name lookups\n"
    (Ntcs_util.Metrics.get m "nd.frames_sent")
    (Ntcs_util.Metrics.get m "gw.forwards")
    (Ntcs_util.Metrics.get m "ns.lookups")
