(* Scriptable scenario runner: builds the two-network reference installation
   and narrates what the NTCS does while modules talk, relocate and fail.

   Usage: dune exec bin/ntcs_demo.exe -- [--trace] [--seed N] [--faults] *)

open Cmdliner
open Ntcs

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

let scenario ~trace ~filter ~seed ~faults =
  (* --faults: the deterministic fault plane — lossy/duplicating/slow links
     while the calls run, and the worker's ring partitioned away for 4s
     mid-conversation — armed declaratively through World.Config. Every
     injection draws from the plane's seeded stream, so the same --seed
     narrates the same failures. *)
  let fault_spec =
    if not faults then None
    else
      Some
        {
          Ntcs_sim.Faults.seed;
          rules =
            [
              Ntcs_sim.Faults.rule ~from_us:4_000_000 ~until_us:30_000_000 ~drop:0.05
                ~dup:0.05 ~delay:0.2 ~delay_us:30_000 ();
            ];
          schedule =
            [
              (5_000_000, Ntcs_sim.Faults.Partition [ [ "ap1" ]; [ "vax1"; "bridge"; "sun1" ] ]);
              (9_000_000, Ntcs_sim.Faults.Heal);
            ];
        }
  in
  let cluster =
    Cluster.build
      ~config:{ Ntcs_sim.World.Config.default with Ntcs_sim.World.Config.seed; faults = fault_spec }
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
      ~ns:"vax1" ()
  in
  (* §6.2: "adequate selectivity in observing this information is equally
     important" — restrict the trace to the requested categories. *)
  if filter <> [] then
    Ntcs_sim.Trace.set_filter (Ntcs_sim.World.trace (Cluster.world cluster)) filter;
  Cluster.settle cluster;
  print_endline "== NTCS demo: ethernet + apollo ring, one gateway, NS on vax1 ==";
  if faults then
    Printf.printf
      "== fault plane armed (seed %d): lossy links 4-30s, ring partitioned 5-9s ==\n" seed;
  let pctl = Ntcs_drts.Process_ctl.create cluster in
  let spec tag =
    {
      Ntcs_drts.Process_ctl.sp_name = "worker";
      sp_attrs = [ ("service", "demo") ];
      sp_body =
        (fun commod ->
          let rec loop () =
            (match Ali_layer.receive commod with
             | Ok env when Ali_layer.expects_reply env ->
               ignore (Ali_layer.reply commod env (raw (tag ^ " says hello")))
             | Ok _ | Error _ -> ());
            loop ()
          in
          loop ());
    }
  in
  let managed = Ntcs_drts.Process_ctl.start pctl (spec "worker@ring") ~machine:"ap1" in
  Cluster.settle ~dt:5_000_000 cluster;
  let driver_stats = ref None in
  ignore
    (Cluster.spawn cluster ~machine:"sun1" ~name:"driver" (fun node ->
         match Commod.bind node ~name:"driver" with
         | Error e -> Printf.printf "driver bind failed: %s\n" (Errors.to_string e)
         | Ok commod -> (
           match Ali_layer.locate commod "worker" with
           | Error e -> Printf.printf "locate failed: %s\n" (Errors.to_string e)
           | Ok addr ->
             for i = 1 to 8 do
               (match
                  Ali_layer.send_sync commod ~dst:addr ~timeout_us:15_000_000 (raw "hi")
                with
                | Ok env ->
                  Printf.printf "[t=%7dus] call %d -> %s\n" (Node.now node) i
                    (Bytes.to_string env.Ali_layer.data)
                | Error e ->
                  Printf.printf "[t=%7dus] call %d -> error %s\n" (Node.now node) i
                    (Errors.to_string e));
               Ntcs_sim.Sched.sleep (Node.sched node) 2_000_000
             done;
             driver_stats := Some (Ali_layer.stats commod))));
  Ntcs_sim.Sched.after (Cluster.sched cluster) 7_000_000 (fun () ->
      print_endline "[operator] relocating worker from the ring to the ethernet...";
      ignore
        (Ntcs_drts.Process_ctl.relocate pctl
           { managed with Ntcs_drts.Process_ctl.m_spec = spec "worker@ether" }
           ~to_machine:"sun1"));
  Cluster.settle ~dt:60_000_000 cluster;
  let m = Cluster.metrics cluster in
  Printf.printf
    "\nsummary: frames=%d gw-forwards=%d faults=%d relocations=%d tadds purged=%d\n"
    (Ntcs_util.Metrics.get m "nd.frames_sent")
    (Ntcs_util.Metrics.get m "gw.forwards")
    (Ntcs_util.Metrics.get m "lcm.addr_faults")
    (Ntcs_util.Metrics.get m "lcm.relocations")
    (Ntcs_util.Metrics.get m "tadd.purged");
  (* The driver's own recovery counters from [Ali_layer.stats]: how hard the
     LCM retry policy had to work on its behalf. *)
  (match !driver_stats with
   | None -> ()
   | Some s ->
     Printf.printf "driver recovery: retries=%d backoff=%dus reestablished=[%s]\n"
       s.Lcm_layer.st_retries s.Lcm_layer.st_backoff_us
       (String.concat "; "
          (List.map
             (fun (a, n) -> Printf.sprintf "%s x%d" a n)
             s.Lcm_layer.st_reestablished)));
  if trace then begin
    let tr = Ntcs_sim.World.trace (Cluster.world cluster) in
    (* Category listing first — per-layer totals via [matching_prefix], then
       each interned category with its own count — so a reader can pick a
       --filter before wading into the full dump. *)
    print_endline "\n-- trace categories --";
    let cats = Ntcs_sim.Trace.categories tr in
    let layers =
      List.sort_uniq compare (List.map (fun (c, _) -> Ntcs_obs.Manifest.track_of c) cats)
    in
    List.iter
      (fun layer ->
        let total = List.length (Ntcs_sim.Trace.matching_prefix tr ~prefix:layer) in
        let members =
          List.filter (fun (c, _) -> Ntcs_obs.Manifest.track_of c = layer) cats
        in
        Printf.printf "%-8s %5d  %s\n" layer total
          (String.concat " "
             (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) members)))
      layers;
    print_endline "\n-- full protocol trace --";
    Ntcs_sim.Trace.dump Format.std_formatter tr
  end;
  0

let () =
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol trace.") in
  let filter =
    Arg.(value & opt_all string []
         & info [ "filter" ] ~docv:"CAT"
             ~doc:"Only record these trace categories (repeatable), e.g. lcm.fault, gw.splice.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"World seed.") in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Arm the deterministic fault plane: lossy links plus a timed \
             partition of the worker's network. Same --seed, same failures.")
  in
  let term =
    Term.(const (fun trace filter seed faults -> scenario ~trace ~filter ~seed ~faults)
          $ trace $ filter $ seed $ faults)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "ntcs_demo" ~doc:"Narrated NTCS scenario.") term))
