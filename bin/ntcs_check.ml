(* ntcs_check: circuit-lifecycle conformance and recursion-cycle analysis.

   Usage: ntcs_check [PATH]...               static analyses (default: lib)
          ntcs_check --json [PATH]...        same, JSON report on stdout
          ntcs_check --static-only [PATH]... skip schedule exploration
          ntcs_check --budget N              schedule cap per scenario

   Static half: the lifecycle automaton's handler-exhaustiveness check
   against proto.ml/ns_proto.ml, and the cross-module recursion-cycle
   analysis (§6.3). Dynamic half: exhaustive small-schedule exploration of
   the bounded scenarios, asserting the automaton and the R3 trace
   invariants on every interleaving. Exit 0 when clean, 1 on any finding.
   Wired into `dune build @check` (and through it `dune runtest`). *)

open Cmdliner

let check_paths paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | m :: _ ->
    Format.eprintf "ntcs_check: no such path: %s@." m;
    Error 2
  | [] -> Ok paths

let run static_only json budget paths =
  match check_paths paths with
  | Error c -> c
  | Ok paths ->
    let diags = Check.static_check paths in
    let explorations = if static_only then [] else Check.explore_all ~max_schedules:budget () in
    let dynamic_bad = List.exists Check.exploration_failed explorations in
    if json then begin
      Format.printf "{\"static\":%s,\"dynamic\":%s}@."
        (Lint_diag.list_to_json diags)
        (Check.exploration_to_json explorations)
    end
    else begin
      Check.report Format.std_formatter diags;
      List.iter (Check.report_exploration Format.std_formatter) explorations;
      if diags = [] && not dynamic_bad then
        Format.printf "ntcs_check: %d file(s) conformant%s@."
          (List.length (Lint.source_files paths))
          (if static_only then "" else ", all explored schedules clean")
      else Format.printf "ntcs_check: %d static finding(s)%s@." (List.length diags)
          (if dynamic_bad then ", exploration failures" else "")
    end;
    if diags = [] && not dynamic_bad then 0 else 1

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to check.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")

let static_arg =
  Arg.(
    value & flag
    & info [ "static-only" ]
        ~doc:"Run only the source-level analyses; skip schedule exploration.")

let budget_arg =
  Arg.(
    value & opt int 4000
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Maximum schedules to explore per scenario. Hitting the cap counts \
           as a failure (the exploration must be exhaustive).")

let cmd =
  let doc = "check circuit-lifecycle conformance and recursion cycles" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Verifies that every module the lifecycle automaton names handles \
         every protocol constructor it is responsible for, that no \
         cross-module recursion cycle re-enters the LCM without the \
         Recursion guard, and that the bounded scenarios satisfy the \
         automaton and the R3 trace invariants on every schedule the \
         simulator could produce.";
    ]
  in
  Cmd.v
    (Cmd.info "ntcs_check" ~doc ~man)
    Term.(const run $ static_arg $ json_arg $ budget_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
