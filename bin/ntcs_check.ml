(* ntcs_check: circuit-lifecycle conformance and recursion-cycle analysis.

   Usage: ntcs_check [PATH]...               static analyses (default: lib)
          ntcs_check --json [PATH]...        same, JSON report on stdout
          ntcs_check --static-only [PATH]... skip schedule exploration
          ntcs_check --budget N              schedule cap per scenario
          ntcs_check --faults                fault-plane soak scenarios only
          ntcs_check --naming                sharded naming-plane scenarios only
          ntcs_check --sanitize              arm the pool sanitizer in scenarios
          ntcs_check --races                 arm the happens-before race checker
          ntcs_check --par N                 domain-parallel validation pass

   Static half: the lifecycle automaton's handler-exhaustiveness check
   against proto.ml/ns_proto.ml, and the cross-module recursion-cycle
   analysis (§6.3). Dynamic half: exhaustive small-schedule exploration of
   the bounded scenarios, asserting the automaton and the R3 trace
   invariants on every interleaving. Exit 0 when clean, 1 on any finding.
   Wired into `dune build @check` (and through it `dune runtest`). *)

open Cmdliner

let check_paths paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | m :: _ ->
    Format.eprintf "ntcs_check: no such path: %s@." m;
    Error 2
  | [] -> Ok paths

(* The fault-plane soak: explore the Check_scenarios.faults list under a
   budget. Truncation is expected (retry timers breed ties forever); each
   scenario must instead complete at least [min_schedules] failure-free
   schedules. *)
let run_faults json budget min_schedules sanitize races =
  let explorations = Check.explore_faults ~max_schedules:budget ~sanitize ~races () in
  let bad = List.exists (Check.fault_exploration_failed ~min_schedules) explorations in
  if json then
    Format.printf "{\"faults\":%s}@." (Check.exploration_to_json explorations)
  else begin
    List.iter (Check.report_exploration Format.std_formatter) explorations;
    if bad then Format.printf "ntcs_check: fault soak failures@."
    else
      Format.printf "ntcs_check: fault soak clean (>= %d schedules per scenario)@."
        min_schedules
  end;
  if bad then 1 else 0

(* The naming-plane soak (`@naming`): the sharded scenarios of DESIGN.md
   §15 — shard routing, relocation vs cached lookups, shard loss — under
   the same volume-and-silence contract as the fault soaks, with the
   cache-coherence trace invariant checked on every schedule. *)
let run_naming json budget min_schedules sanitize races =
  let explorations = Check.explore_naming ~max_schedules:budget ~sanitize ~races () in
  let bad = List.exists (Check.fault_exploration_failed ~min_schedules) explorations in
  if json then
    Format.printf "{\"naming\":%s}@." (Check.exploration_to_json explorations)
  else begin
    List.iter (Check.report_exploration Format.std_formatter) explorations;
    if bad then Format.printf "ntcs_check: naming soak failures@."
    else
      Format.printf "ntcs_check: naming soak clean (>= %d schedules per scenario)@."
        min_schedules
  end;
  if bad then 1 else 0

(* Domain-parallel validation (DESIGN.md §14): every bounded scenario and
   fault soak replicated on [n] concurrent domains (byte-identical traces
   required), plus the coupled barrier soak on an [n]-shard world run
   under the 1/2/4-worker matrix. *)
let run_par json n =
  let scenarios = Check_scenarios.all @ Check_scenarios.faults in
  let reps = List.map (Check_par.replicate ~replicas:n) scenarios in
  let soak = Check_par.par_soak ~domains:n () in
  let bad =
    List.exists Check_par.replication_failed reps || Check_par.par_soak_failed soak
  in
  if json then
    Format.printf
      "{\"par\":{\"domains\":%d,\"replications\":%d,\"divergent\":%d,\
       \"soak_epochs\":%d,\"soak_messages\":%d,\"soak_failed\":%b}}@."
      n (List.length reps)
      (List.length (List.filter Check_par.replication_failed reps))
      soak.Check_par.pr_epochs soak.Check_par.pr_messages
      (Check_par.par_soak_failed soak)
  else begin
    List.iter (Check_par.report_replication Format.std_formatter) reps;
    Check_par.report_par Format.std_formatter soak;
    if bad then Format.printf "ntcs_check: parallel validation failures@."
    else
      Format.printf
        "ntcs_check: parallel validation clean (%d domain(s), worker matrix 1/2/4)@." n
  end;
  if bad then 1 else 0

let run static_only faults naming json budget min_schedules sanitize races par paths =
  if par > 0 then run_par json par
  else if naming then run_naming json budget min_schedules sanitize races
  else if faults then run_faults json budget min_schedules sanitize races
  else
    match check_paths paths with
    | Error c -> c
    | Ok paths ->
      let diags = Check.static_check paths in
      let explorations =
        if static_only then []
        else Check.explore_all ~max_schedules:budget ~sanitize ~races ()
      in
      let dynamic_bad = List.exists Check.exploration_failed explorations in
      if json then begin
        Format.printf "{\"static\":%s,\"dynamic\":%s}@."
          (Lint_diag.list_to_json diags)
          (Check.exploration_to_json explorations)
      end
      else begin
        Check.report Format.std_formatter diags;
        List.iter (Check.report_exploration Format.std_formatter) explorations;
        if diags = [] && not dynamic_bad then
          Format.printf "ntcs_check: %d file(s) conformant%s@."
            (List.length (Lint.source_files paths))
            (if static_only then "" else ", all explored schedules clean")
        else Format.printf "ntcs_check: %d static finding(s)%s@." (List.length diags)
            (if dynamic_bad then ", exploration failures" else "")
      end;
      if diags = [] && not dynamic_bad then 0 else 1

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to check.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")

let static_arg =
  Arg.(
    value & flag
    & info [ "static-only" ]
        ~doc:"Run only the source-level analyses; skip schedule exploration.")

let faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Run only the fault-injection soak scenarios (deterministic \
           fault plane armed). Truncation at the budget is acceptable; \
           each scenario must instead complete the minimum number of \
           failure-free schedules.")

let naming_arg =
  Arg.(
    value & flag
    & info [ "naming" ]
        ~doc:
          "Run only the sharded naming-plane scenarios (DESIGN.md §15): \
           shard routing with all owners alive, §3.5 relocation racing \
           cached lookups, and shard loss with failover through the \
           surviving replicas. Every schedule is additionally checked for \
           lookup-cache coherence. Same soak contract as $(b,--faults). \
           The `@naming` dune alias runs this.")

let budget_arg =
  Arg.(
    value & opt int 4000
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Maximum schedules to explore per scenario. Without $(b,--faults), \
           hitting the cap counts as a failure (the exploration must be \
           exhaustive).")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Arm the buffer-pool sanitizer in every scenario world: poison \
           canaries, generation-tagged hand-outs, double/foreign-release \
           detection. Aliasing violations fail the schedule; leaks at \
           teardown are reported as trace events only. The `@sanitize` \
           dune alias runs the fault soaks this way.")

let races_arg =
  Arg.(
    value & flag
    & info [ "races" ]
        ~doc:
          "Arm the happens-before race checker in every scenario world: \
           vector clocks over the scheduler's owner-tagged events, plus \
           access hooks on the registered shared cells. Any conflicting \
           access pair unordered by happens-before — a would-be race under \
           domain-parallel world execution — fails the schedule. The \
           `@race` dune alias runs the scenarios and fault soaks this way.")

let par_arg =
  Arg.(
    value & opt int 0
    & info [ "par" ] ~docv:"N"
        ~doc:
          "Run the domain-parallel validation pass instead: every bounded \
           scenario and fault soak replicated on $(docv) concurrent domains \
           (traces must be byte-identical to the solo run), plus the \
           coupled $(docv)-shard barrier soak under the 1/2/4-worker \
           matrix — byte-identical merged logs, clean spans, zero race \
           conflicts, and a choice-log record/replay round trip. The \
           `@par` dune alias runs this for 1, 2 and 4 domains.")

let min_schedules_arg =
  Arg.(
    value & opt int 100
    & info [ "min-schedules" ] ~docv:"N"
        ~doc:
          "With $(b,--faults): the minimum failure-free schedules each soak \
           scenario must complete.")

let cmd =
  let doc = "check circuit-lifecycle conformance and recursion cycles" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Verifies that every module the lifecycle automaton names handles \
         every protocol constructor it is responsible for, that no \
         cross-module recursion cycle re-enters the LCM without the \
         Recursion guard, and that the bounded scenarios satisfy the \
         automaton and the R3 trace invariants on every schedule the \
         simulator could produce.";
    ]
  in
  Cmd.v
    (Cmd.info "ntcs_check" ~doc ~man)
    Term.(
      const run $ static_arg $ faults_arg $ naming_arg $ json_arg $ budget_arg
      $ min_schedules_arg $ sanitize_arg $ races_arg $ par_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
