(* Observability report: run a seeded reference workload and print what the
   obs plane saw — per-layer latency percentiles from the histograms, and
   per-circuit hop timelines reconstructed from the causal span log.

   Usage: dune exec bin/ntcs_stat.exe -- [--seed N] [--faults] [--json]
                                         [--pool] [--sanitize] [--naming]
                                         [--chrome FILE] [--spans FILE]

   Everything is deterministic: the same --seed prints the same report and
   writes byte-identical export files. *)

open Cmdliner
open Ntcs
module Span = Ntcs_obs.Span
module Registry = Ntcs_obs.Registry
module Export = Ntcs_obs.Export
module Histo = Ntcs_obs.Histo

let raw s = Ntcs_wire.Convert.payload_raw (Bytes.of_string s)

(* The measured workload: the two-network reference installation (ethernet +
   ring bridged by one prime gateway, NS on the vax), an echo worker on the
   ring, and a driver on the ethernet running synchronous calls, datagrams
   and pings across the gateway. Small but it exercises every span source:
   circuit opens, all five LCM primitives, gateway forwards, and (with
   --faults) the retry path. *)
let run_workload ~seed ~faults ~sanitize ~naming =
  (* One declarative World.Config: the sanitizer is armed at creation
     (hand-outs predating the tracker would read as foreign on release)
     and the fault plane's seeded rules ride in the same record. With
     --naming the name space is served by the four-shard plane (DESIGN.md
     §15) and the driver re-resolves the worker before every call, so the
     report shows the NSP lookup cache and the shard router at work. *)
  let config =
    {
      Ntcs_sim.World.Config.default with
      Ntcs_sim.World.Config.seed;
      sanitize;
      naming =
        (if naming then { Ntcs_sim.World.Config.shards = 4; cache_capacity = 512 }
         else Ntcs_sim.World.Config.default_naming);
      faults =
        (if not faults then None
         else
           Some
             {
               Ntcs_sim.Faults.seed;
               rules =
                 [
                   Ntcs_sim.Faults.rule ~from_us:3_000_000 ~until_us:20_000_000
                     ~drop:0.05 ~dup:0.05 ~delay:0.2 ~delay_us:30_000 ();
                 ];
               schedule = [];
             });
    }
  in
  let cluster =
    Cluster.build ~config
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ]
      ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
      ~ns:"vax1"
      ~ns_replicas:(if naming then [ "sun1"; "bridge" ] else [])
      ()
  in
  Cluster.settle cluster;
  ignore
    (Cluster.spawn cluster ~machine:"ap1" ~name:"worker" (fun node ->
         match Commod.bind node ~name:"worker" with
         | Error _ -> ()
         | Ok commod ->
           let rec loop () =
             (match Ali_layer.receive commod with
              | Ok env when Ali_layer.expects_reply env ->
                ignore (Ali_layer.reply commod env (raw "echo"))
              | Ok _ | Error _ -> ());
             loop ()
           in
           loop ()));
  Cluster.settle ~dt:3_000_000 cluster;
  ignore
    (Cluster.spawn cluster ~machine:"sun1" ~name:"driver" (fun node ->
         match Commod.bind node ~name:"driver" with
         | Error _ -> ()
         | Ok commod -> (
           match Ali_layer.locate commod "worker" with
           | Error _ -> ()
           | Ok addr ->
             for _ = 1 to 6 do
               (* Under --naming, re-resolve before every call: after the
                  first miss these locates are what the cache answers. *)
               if naming then ignore (Ali_layer.locate commod "worker");
               ignore
                 (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000
                    (raw "measured call"));
               ignore (Ali_layer.send_dgram commod ~dst:addr (raw "dgram"));
               Ntcs_sim.Sched.sleep (Node.sched node) 1_000_000
             done;
             ignore (Ali_layer.send commod ~dst:addr (raw "fire-and-forget")))));
  Cluster.settle ~dt:40_000_000 cluster;
  if sanitize then ignore (Ntcs_sim.World.pool_leak_check (Cluster.world cluster));
  Cluster.metrics cluster

(* --- per-layer latency table --- *)

let layer_table r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "-- per-layer latency and size distributions --\n";
  Buffer.add_string b
    (Printf.sprintf "%-26s %7s %8s %8s %8s %8s %8s\n" "histogram" "count" "p50" "p95"
       "p99" "max" "mean");
  List.iter
    (fun (name, h) ->
      Buffer.add_string b
        (Printf.sprintf "%-26s %7d %8d %8d %8d %8d %8.1f\n" name (Histo.count h)
           (Histo.p50 h) (Histo.p95 h) (Histo.p99 h) (Histo.max_value h) (Histo.mean h)))
    (Registry.histos_alist r);
  Buffer.contents b

(* --- buffer-pool report (--pool) --- *)

(* What the zero-copy pipeline cost: pool hit rate (how often a send reused
   a buffer instead of allocating), buffers still out, and the distribution
   of bytes actually copied per frame-path observation — forwarded frames
   record 0, send-side materialisation records the payload size. *)
let pool_report ~sanitize r =
  let b = Buffer.create 512 in
  let hits = Ntcs_util.Metrics.get r "pool.hits" in
  let misses = Ntcs_util.Metrics.get r "pool.misses" in
  let unpooled = Ntcs_util.Metrics.get r "pool.unpooled" in
  Buffer.add_string b "-- buffer pool and copy discipline --\n";
  Buffer.add_string b
    (Printf.sprintf "pool allocations: %d hits, %d misses, %d unpooled (hit rate %s)\n"
       hits misses unpooled
       (if hits + misses = 0 then "n/a"
        else
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int hits /. float_of_int (hits + misses))));
  Buffer.add_string b
    (Printf.sprintf "buffers out now: %.0f   high water: %.0f\n"
       (Ntcs_util.Metrics.gauge r "pool.in_use")
       (Ntcs_util.Metrics.gauge r "pool.high_water"));
  (let bad = Ntcs_util.Metrics.get r "pool.bad_release" in
   if bad > 0 then
     Buffer.add_string b (Printf.sprintf "releases rejected: %d\n" bad));
  if sanitize then
    Buffer.add_string b
      (Printf.sprintf
         "sanitizer: poison %d  double release %d  foreign release %d  leaked %d\n"
         (Ntcs_util.Metrics.get r "pool.sanitizer.poison")
         (Ntcs_util.Metrics.get r "pool.sanitizer.double_release")
         (Ntcs_util.Metrics.get r "pool.sanitizer.foreign_release")
         (Ntcs_util.Metrics.get r "pool.sanitizer.leak"));
  (match Registry.find_histo r "frame.bytes_copied" with
   | None -> Buffer.add_string b "frame.bytes_copied: no observations\n"
   | Some h ->
     Buffer.add_string b
       (Printf.sprintf
          "frame.bytes_copied: count %d  sum %d  p50 %d  p95 %d  p99 %d  max %d\n"
          (Histo.count h) (Histo.sum h) (Histo.p50 h) (Histo.p95 h) (Histo.p99 h)
          (Histo.max_value h)));
  Buffer.contents b

(* --- naming-plane report (--naming) --- *)

(* What the sharded name service cost and saved: NSP lookup-cache traffic
   (hit rate is the headline), invalidation work (client floor raises and
   owner generation bumps), the shard router's forwards and fallbacks,
   and how the lookup load spread over the shards. *)
let naming_report r =
  let b = Buffer.create 512 in
  let get = Ntcs_util.Metrics.get r in
  let hits = get "nsp.cache_hits" in
  let stale = get "nsp.cache_stale" in
  let misses = get "nsp.cache_misses" in
  Buffer.add_string b "-- naming plane (4 shards) --\n";
  Buffer.add_string b
    (Printf.sprintf "lookup cache: %d hits, %d stale, %d misses (hit rate %s)\n" hits
       stale misses
       (if hits + stale + misses = 0 then "n/a"
        else
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int hits /. float_of_int (hits + stale + misses))));
  Buffer.add_string b
    (Printf.sprintf "invalidations: %d owner generation bumps, %d cache floor raises\n"
       (get "ns.invalidations") (get "nsp.cache_invalidations"));
  Buffer.add_string b
    (Printf.sprintf "shard router: %d forwards, %d fallbacks; client failovers: %d\n"
       (get "ns.shard.forwards") (get "ns.shard.fallbacks") (get "nsp.failovers"));
  Buffer.add_string b "per-shard lookups:";
  for shard = 0 to 3 do
    Buffer.add_string b
      (Printf.sprintf "  shard%d %d" shard (get (Printf.sprintf "ns.shard%d.lookups" shard)))
  done;
  Buffer.add_string b "\n";
  Buffer.contents b

(* --- per-circuit timelines --- *)

(* Span events grouped by circuit id, preserving time order within each. *)
let by_circuit r =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      let c = e.Span.ev_ctx.Span.sp_circuit in
      let old = try Hashtbl.find tbl c with Not_found -> [] in
      Hashtbl.replace tbl c (e :: old))
    (Registry.spans r);
  Hashtbl.fold (fun c evs acc -> (c, List.rev evs) :: acc) tbl []
  |> List.sort compare

(* The circuit-level B/E pair is the (circuit, seq=0) span. *)
let circuit_meta evs =
  let opened =
    List.find_opt
      (fun (e : Span.event) -> e.Span.ev_ctx.Span.sp_seq = 0 && e.Span.ev_phase = Span.B)
      evs
  in
  let closed =
    List.find_opt
      (fun (e : Span.event) -> e.Span.ev_ctx.Span.sp_seq = 0 && e.Span.ev_phase = Span.E)
      evs
  in
  (opened, closed)

let message_seqs evs =
  List.filter_map
    (fun (e : Span.event) ->
      if e.Span.ev_ctx.Span.sp_seq > 0 then Some e.Span.ev_ctx.Span.sp_seq else None)
    evs
  |> List.sort_uniq compare

let timeline_line evs seq =
  let mine =
    List.filter (fun (e : Span.event) -> e.Span.ev_ctx.Span.sp_seq = seq) evs
  in
  match List.find_opt (fun (e : Span.event) -> e.Span.ev_phase = Span.B) mine with
  | None -> None
  | Some b ->
    let fin = List.find_opt (fun (e : Span.event) -> e.Span.ev_phase = Span.E) mine in
    let hops =
      List.filter (fun (e : Span.event) -> e.Span.ev_phase = Span.I) mine
      |> List.map (fun (e : Span.event) ->
             Printf.sprintf "%s@%s+%d" e.Span.ev_name e.Span.ev_actor
               (e.Span.ev_at_us - b.Span.ev_at_us))
    in
    let outcome =
      match fin with
      | Some e ->
        Printf.sprintf "%+dus %s" (e.Span.ev_at_us - b.Span.ev_at_us) e.Span.ev_detail
      | None -> "unfinished"
    in
    Some
      (Printf.sprintf "  #%-3d %-14s t=%-9d %-18s %s" seq b.Span.ev_name b.Span.ev_at_us
         outcome
         (if hops = [] then "" else "hops: " ^ String.concat " " hops))

let circuit_report r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "-- per-circuit timelines --\n";
  List.iter
    (fun (c, evs) ->
      if c > 0 then begin
        let opened, closed = circuit_meta evs in
        let describe label = function
          | Some (e : Span.event) ->
            Printf.sprintf "%s t=%d %s" label e.Span.ev_at_us e.Span.ev_detail
          | None -> label ^ " ?"
        in
        Buffer.add_string b
          (Printf.sprintf "circuit %d: %s, %s, msgs=%d\n" c
             (describe "opened" opened) (describe "closed" closed)
             (List.length (message_seqs evs)));
        List.iter
          (fun seq ->
            match timeline_line evs seq with
            | Some line -> Buffer.add_string b (line ^ "\n")
            | None -> ())
          (message_seqs evs)
      end)
    (by_circuit r);
  Buffer.contents b

(* --- JSON report: stats + circuits, both from deterministic exporters --- *)

let json_report r =
  let circuits =
    by_circuit r
    |> List.map (fun (c, evs) ->
           Printf.sprintf "{\"circuit\":%d,\"events\":[%s]}" c
             (String.concat "," (List.map Export.span_json evs)))
  in
  Printf.sprintf "{\"stats\":%s,\"circuits\":[%s]}" (Export.stats_json r)
    (String.concat "," circuits)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let report ~seed ~faults ~json ~pool ~sanitize ~naming ~chrome ~spans_out =
  let r = run_workload ~seed ~faults ~sanitize ~naming in
  (match chrome with
   | Some path ->
     write_file path (Export.chrome_trace r);
     if not json then Printf.printf "wrote Chrome trace to %s\n" path
   | None -> ());
  (match spans_out with
   | Some path ->
     write_file path (Export.spans_jsonl r);
     if not json then Printf.printf "wrote span events to %s\n" path
   | None -> ());
  if json then print_string (json_report r)
  else begin
    Printf.printf "== NTCS observability report (seed %d%s%s%s) ==\n\n" seed
      (if faults then ", fault plane armed" else "")
      (if sanitize then ", pool sanitizer armed" else "")
      (if naming then ", 4-shard naming plane" else "");
    print_string (layer_table r);
    print_newline ();
    if pool || sanitize then begin
      print_string (pool_report ~sanitize r);
      print_newline ()
    end;
    if naming then begin
      print_string (naming_report r);
      print_newline ()
    end;
    print_string (circuit_report r);
    Printf.printf "\ncircuits allocated: %d   span events: %d\n"
      (Registry.circuits_allocated r) (Registry.span_count r)
  end;
  0

let () =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"World seed.") in
  let faults =
    Arg.(value & flag & info [ "faults" ] ~doc:"Arm the deterministic fault plane.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let pool =
    Arg.(value & flag
         & info [ "pool" ]
             ~doc:"Print the buffer-pool section: hit rate, buffers in flight, \
                   and the bytes-copied-per-frame distribution.")
  in
  let sanitize =
    Arg.(value & flag
         & info [ "sanitize" ]
             ~doc:"Arm the buffer-pool sanitizer on the workload's world and \
                   report its violation counters (implies the pool section): \
                   poison canary hits, double/foreign releases, and buffers \
                   still outstanding at teardown.")
  in
  let naming =
    Arg.(value & flag
         & info [ "naming" ]
             ~doc:"Serve the workload's name space from the four-shard naming \
                   plane (replica name servers, NSP lookup caches) and print \
                   the naming section: cache hit rate, invalidation work, \
                   shard-router forwards/fallbacks and per-shard lookup load.")
  in
  let chrome =
    Arg.(value & opt (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event file (about:tracing / Perfetto).")
  in
  let spans_out =
    Arg.(value & opt (some string) None
         & info [ "spans" ] ~docv:"FILE" ~doc:"Write span events as JSONL.")
  in
  let term =
    Term.(const (fun seed faults json pool sanitize naming chrome spans_out ->
              report ~seed ~faults ~json ~pool ~sanitize ~naming ~chrome ~spans_out)
          $ seed $ faults $ json $ pool $ sanitize $ naming $ chrome $ spans_out)
  in
  exit
    (Cmd.eval'
       (Cmd.v
          (Cmd.info "ntcs_stat"
             ~doc:"Per-layer latency and per-circuit timelines from the obs plane.")
          term))
