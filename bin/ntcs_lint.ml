(* ntcs_lint: layer-discipline and determinism linter for the NTCS tree.

   Usage: ntcs_lint [PATH]...               lint (default: lib)
          ntcs_lint --json [PATH]...        same, JSON report on stdout
          ntcs_lint --pragmas [PATH]...     audit every active allow pragma
          ntcs_lint --ownership-map [PATH]  the R8 shared-state inventory

   Exit 0 when clean, 1 when any rule fires (2: bad path). Wired into
   `dune build @lint` (and through it `dune runtest`) from the root dune
   file. *)

open Cmdliner

let check_paths paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | m :: _ ->
    Format.eprintf "ntcs_lint: no such path: %s@." m;
    Error 2
  | [] -> Ok paths

(* R8 reachability runs on the resolved reference graph from the check
   library (hook/callback edges included), not just the lexical one the
   lint library can build for itself — the lint library cannot depend on
   ntcs_check (the dependency points the other way), but this driver
   links both. *)
let resolved_graph paths =
  List.map
    (fun (e : Check_graph.edge) -> (e.e_src, e.e_dst))
    (Check_graph.graph (List.map Lint_lex.load (Lint.source_files paths)))

let run_lint json paths =
  let diags = Lint.lint_paths ~graph:(resolved_graph paths) paths in
  if json then begin
    print_endline (Lint_diag.list_to_json diags);
    if diags = [] then 0 else 1
  end
  else if diags = [] then begin
    Format.printf "ntcs_lint: %d file(s) clean@." (List.length (Lint.source_files paths));
    0
  end
  else begin
    Lint.report Format.std_formatter diags;
    Format.printf "ntcs_lint: %d violation(s)@." (List.length diags);
    1
  end

let run_pragmas json paths =
  let entries = Lint.pragmas_in_paths paths in
  if json then print_endline (Lint.pragmas_to_json entries)
  else begin
    Lint.report_pragmas Format.std_formatter entries;
    Format.printf "ntcs_lint: %d active pragma(s)@." (List.length entries)
  end;
  0

let run_ownership_map json paths =
  let entries = Lint.ownership_map ~graph:(resolved_graph paths) paths in
  if json then print_endline (Lint_domsafe.map_to_json entries)
  else begin
    List.iter
      (fun e -> Format.printf "%a@." Lint_domsafe.pp_entry e)
      entries;
    Format.printf "ntcs_lint: %d mutable binding(s)/field(s) classified@."
      (List.length entries)
  end;
  0

let run pragmas ownership_map json paths =
  match check_paths paths with
  | Error c -> c
  | Ok paths ->
    if pragmas then run_pragmas json paths
    else if ownership_map then run_ownership_map json paths
    else run_lint json paths

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a JSON array on stdout.")

let pragmas_arg =
  Arg.(
    value & flag
    & info [ "pragmas" ]
        ~doc:
          "Instead of linting, list every active (* lint: allow ... *) escape hatch \
           with its scope and reason, so suppressions stay auditable.")

let ownership_map_arg =
  Arg.(
    value & flag
    & info [ "ownership-map" ]
        ~doc:
          "Instead of linting, emit the R8 shared-state inventory: every \
           module-level mutable binding and mutable record field under the \
           given paths, classified world-local / machine-local / \
           ambient-global, with reachability from per-machine code and any \
           covering waiver. With $(b,--json), the machine-readable \
           $(b,ntcs.lint.ownership-map/1) document the parallel-world \
           refactor consumes as its work list.")

let cmd =
  let doc = "check NTCS layer, determinism and frame-ownership rules" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scans OCaml sources and enforces downward-only layer references, \
         IPCS-backend and conversion-mode allowlists, the ban on wall \
         clocks, unseeded randomness and hash-order iteration in protocol \
         paths, and the zero-copy frame-ownership discipline: R6 \
         ($(b,ownership)) tracks pooled buffers from Pool.alloc to \
         Pool.release per function and flags use-after-release, double \
         release, exception-path leaks and buffers that never reach a \
         release or hand-off; R7 ($(b,escape)) flags live buffers and views \
         stored into long-lived structures; R8 ($(b,domsafe)) flags \
         module-level mutable state reachable from per-machine code — \
         ambient globals the domain-parallel world refactor cannot shard \
         ($(b,--ownership-map) emits the full classification). Suppress a \
         finding with a \
         comment: (* lint: allow <rule>(<arg>) \xe2\x80\x94 <reason> *). \
         $(b,--pragmas) lists every active suppression.";
    ]
  in
  Cmd.v (Cmd.info "ntcs_lint" ~doc ~man)
    Term.(const run $ pragmas_arg $ ownership_map_arg $ json_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
