(* ntcs_lint: layer-discipline and determinism linter for the NTCS tree.

   Usage: ntcs_lint [PATH]...             lint (default: lib)
          ntcs_lint --json [PATH]...      same, JSON report on stdout
          ntcs_lint --pragmas [PATH]...   audit every active allow pragma

   Exit 0 when clean, 1 when any rule fires. Wired into `dune build @lint`
   (and through it `dune runtest`) from the root dune file. *)

open Cmdliner

let check_paths paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | m :: _ ->
    Format.eprintf "ntcs_lint: no such path: %s@." m;
    Error 2
  | [] -> Ok paths

let run_lint json paths =
  let diags = Lint.lint_paths paths in
  if json then begin
    print_endline (Lint_diag.list_to_json diags);
    if diags = [] then 0 else 1
  end
  else if diags = [] then begin
    Format.printf "ntcs_lint: %d file(s) clean@." (List.length (Lint.source_files paths));
    0
  end
  else begin
    Lint.report Format.std_formatter diags;
    Format.printf "ntcs_lint: %d violation(s)@." (List.length diags);
    1
  end

let run_pragmas json paths =
  let entries = Lint.pragmas_in_paths paths in
  if json then print_endline (Lint.pragmas_to_json entries)
  else begin
    Lint.report_pragmas Format.std_formatter entries;
    Format.printf "ntcs_lint: %d active pragma(s)@." (List.length entries)
  end;
  0

let run pragmas json paths =
  match check_paths paths with
  | Error c -> c
  | Ok paths -> if pragmas then run_pragmas json paths else run_lint json paths

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a JSON array on stdout.")

let pragmas_arg =
  Arg.(
    value & flag
    & info [ "pragmas" ]
        ~doc:
          "Instead of linting, list every active (* lint: allow ... *) escape hatch \
           with its scope and reason, so suppressions stay auditable.")

let cmd =
  let doc = "check NTCS layer, determinism and frame-ownership rules" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scans OCaml sources and enforces downward-only layer references, \
         IPCS-backend and conversion-mode allowlists, the ban on wall \
         clocks, unseeded randomness and hash-order iteration in protocol \
         paths, and the zero-copy frame-ownership discipline: R6 \
         ($(b,ownership)) tracks pooled buffers from Pool.alloc to \
         Pool.release per function and flags use-after-release, double \
         release, exception-path leaks and buffers that never reach a \
         release or hand-off; R7 ($(b,escape)) flags live buffers and views \
         stored into long-lived structures. Suppress a finding with a \
         comment: (* lint: allow <rule>(<arg>) \xe2\x80\x94 <reason> *). \
         $(b,--pragmas) lists every active suppression.";
    ]
  in
  Cmd.v (Cmd.info "ntcs_lint" ~doc ~man) Term.(const run $ pragmas_arg $ json_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
