(* ntcs_lint: layer-discipline and determinism linter for the NTCS tree.

   Usage: ntcs_lint [PATH]...   (default: lib)

   Exit 0 when clean, 1 when any rule fires. Wired into `dune build @lint`
   (and through it `dune runtest`) from the root dune file. *)

open Cmdliner

let run paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  match missing with
  | m :: _ ->
    Format.eprintf "ntcs_lint: no such path: %s@." m;
    2
  | [] ->
    let diags = Lint.lint_paths paths in
    if diags = [] then begin
      Format.printf "ntcs_lint: %d file(s) clean@."
        (List.length (Lint.source_files paths));
      0
    end
    else begin
      Lint.report Format.std_formatter diags;
      Format.printf "ntcs_lint: %d violation(s)@." (List.length diags);
      1
    end

let paths_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")

let cmd =
  let doc = "check NTCS layer discipline (R1) and determinism (R2) rules" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scans OCaml sources and enforces downward-only layer references, \
         IPCS-backend and conversion-mode allowlists, and the ban on wall \
         clocks, unseeded randomness and hash-order iteration in protocol \
         paths. Suppress a finding with a comment: \
         (* lint: allow <rule>(<arg>) \xe2\x80\x94 <reason> *).";
    ]
  in
  Cmd.v (Cmd.info "ntcs_lint" ~doc ~man) Term.(const run $ paths_arg)

let () = exit (Cmd.eval' cmd)
