(* Print the paper's architecture figures (2-1 .. 2-4), regenerated from the
   implementation's module structure.

   Usage: dune exec bin/architecture.exe            (all figures)
          dune exec bin/architecture.exe -- fig2-2  (one figure) *)

let figures =
  [
    ("fig2-1", Ntcs.Figures.fig_2_1);
    ("fig2-2", Ntcs.Figures.fig_2_2);
    ("fig2-3", Ntcs.Figures.fig_2_3);
    ("fig2-4", Ntcs.Figures.fig_2_4);
  ]

let inventory () =
  print_string
    {|
Module inventory (DESIGN.md section 3):

  lib/util   ntcs_util   rng, heap, lru, bounded queues, metrics, stats
  lib/sim    ntcs_sim    deterministic scheduler, machines, networks, traces
  lib/ipcs   ntcs_ipcs   physical addresses; simulated Unix TCP and Apollo MBX
  lib/wire   ntcs_wire   image / packed / shift conversion modes (paper section 5)
  lib/core   ntcs        the NTCS: ND / IP+Gateway / LCM / NSP / ALI layers,
                         UAdds+TAdds, Name Server, router, cluster builder
  lib/drts   ntcs_drts   process control, time service, monitor, error log
  lib/ursa   ursa        the URSA retrieval application (index/search/docs)
|}

let () =
  match Array.to_list Sys.argv with
  | _ :: names when names <> [] ->
    List.iter
      (fun name ->
        match List.assoc_opt name figures with
        | Some f -> f ()
        | None when name = "inventory" -> inventory ()
        | None ->
          Printf.printf "unknown figure %S; known: %s inventory\n" name
            (String.concat " " (List.map fst figures)))
      names
  | _ ->
    List.iter (fun (_, f) -> f ()) figures;
    inventory ()
