(* Drive a full URSA deployment from the command line.

   Usage:
     dune exec bin/ursa_cli.exe -- search "gateway routing" --k 5
     dune exec bin/ursa_cli.exe -- fetch 17
     dune exec bin/ursa_cli.exe -- search "naming" --spread --docs 200 *)

open Cmdliner
open Ntcs

let build_deployment ~spread ~docs =
  let cluster =
    if spread then
      Cluster.build
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
            ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
            ("ap2", Ntcs_sim.Machine.Apollo, [ "ring" ]);
          ]
        ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
        ~ns:"vax1" ()
    else
      Cluster.build
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
            ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ]
        ~ns:"vax1" ()
  in
  Cluster.settle cluster;
  let corpus = Ursa.Corpus.generate docs in
  let machines = if spread then [ "ap1"; "ap2" ] else [ "sun1"; "sun2" ] in
  Ursa.Host.deploy cluster ~machines ~partitions:4 ~corpus ~search_machine:"vax1";
  Cluster.settle ~dt:20_000_000 cluster;
  (cluster, corpus)

let with_host ~spread ~docs f =
  let cluster, _corpus = build_deployment ~spread ~docs in
  let exit_code = ref 0 in
  ignore
    (Cluster.spawn cluster ~machine:"vax1" ~name:"cli-user" (fun node ->
         match Commod.bind node ~name:"cli-user" with
         | Error e ->
           Printf.printf "bind failed: %s\n" (Errors.to_string e);
           exit_code := 1
         | Ok commod -> f (Ursa.Host.create commod) exit_code));
  Cluster.settle ~dt:240_000_000 cluster;
  !exit_code

let search_cmd =
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Number of hits to return.") in
  let spread =
    Arg.(value & flag & info [ "spread" ] ~doc:"Put backends across a gateway.")
  in
  let docs = Arg.(value & opt int 120 & info [ "docs" ] ~doc:"Corpus size.") in
  let run query k spread docs =
    with_host ~spread ~docs (fun host exit_code ->
        match Ursa.Host.search ~k ~timeout_us:60_000_000 host query with
        | Error e ->
          Printf.printf "search failed: %s\n" (Errors.to_string e);
          exit_code := 1
        | Ok reply ->
          Printf.printf "%d partitions answered; top %d hits:\n"
            reply.Ursa.Ursa_msg.sr_partitions (List.length reply.Ursa.Ursa_msg.sr_hits);
          List.iter
            (fun hit ->
              Printf.printf "  doc %4d  score %6d\n" hit.Ursa.Ursa_msg.h_doc
                hit.Ursa.Ursa_msg.h_score_milli)
            reply.Ursa.Ursa_msg.sr_hits)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Ranked search across the distributed index.")
    Term.(const run $ query $ k $ spread $ docs)

let fetch_cmd =
  let doc_id = Arg.(required & pos 0 (some int) None & info [] ~docv:"DOC") in
  let spread = Arg.(value & flag & info [ "spread" ]) in
  let docs = Arg.(value & opt int 120 & info [ "docs" ]) in
  let run doc_id spread docs =
    with_host ~spread ~docs (fun host exit_code ->
        match Ursa.Host.fetch ~timeout_us:60_000_000 host ~doc:doc_id with
        | Error e ->
          Printf.printf "fetch failed: %s\n" (Errors.to_string e);
          exit_code := 1
        | Ok (title, body) -> Printf.printf "%s\n\n%s\n" title body)
  in
  Cmd.v
    (Cmd.info "fetch" ~doc:"Fetch one document from the distributed store.")
    Term.(const run $ doc_id $ spread $ docs)

let status_cmd =
  let spread = Arg.(value & flag & info [ "spread" ]) in
  let docs = Arg.(value & opt int 120 & info [ "docs" ]) in
  let run spread docs =
    with_host ~spread ~docs (fun host exit_code ->
        ignore host;
        ignore exit_code;
        ())
    |> ignore;
    (* Rebuild so we can inspect the naming service directly. *)
    let cluster, _ = build_deployment ~spread ~docs in
    let printed = ref false in
    ignore
      (Cluster.spawn cluster ~machine:"vax1" ~name:"status" (fun node ->
           match Commod.bind node ~name:"status" with
           | Error _ -> ()
           | Ok commod ->
             let show label attrs =
               match Ali_layer.locate_attrs commod attrs with
               | Error e -> Printf.printf "  %-12s error: %s
" label (Errors.to_string e)
               | Ok addrs ->
                 Printf.printf "  %-12s %d module(s):" label (List.length addrs);
                 List.iter (fun a -> Printf.printf " %s" (Addr.to_string a)) addrs;
                 print_newline ()
             in
             print_endline "URSA deployment status (from the naming service):";
             show "index" [ ("service", Ursa.Servers.index_service) ];
             show "doc-store" [ ("service", Ursa.Servers.doc_service) ];
             show "search" [ ("service", Ursa.Servers.search_service) ];
             printed := true));
    Cluster.settle ~dt:60_000_000 cluster;
    if !printed then 0 else 1
  in
  Cmd.v
    (Cmd.info "status" ~doc:"List the deployed URSA modules via attribute-based naming.")
    Term.(const run $ spread $ docs)

let () =
  let info = Cmd.info "ursa_cli" ~doc:"URSA information retrieval over the NTCS." in
  exit (Cmd.eval' (Cmd.group info [ search_cmd; fetch_cmd; status_cmd ]))
