(* Shared helpers for the experiment harness: table printing and a Bechamel
   runner for the host-CPU micro-benchmarks. *)

let header title paper_ref =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "    paper: %s\n\n" paper_ref

let row fmt = Printf.printf fmt

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "  %-*s" (List.nth widths i + 2) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let us v = Printf.sprintf "%.0f us" v
let ratio a b =
  if b = 0. then "effectively infinite (denominator ~0)" else Printf.sprintf "%.2fx" (a /. b)

(* --- Bechamel runner: returns (name, ns/run) pairs --- *)

let bechamel_run ?(quota = 0.25) tests =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      (name, est) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let ns_per_run v = if Float.is_nan v then "n/a" else Printf.sprintf "%10.0f ns" v
