(* The experiment harness: one function per entry in DESIGN.md §5.

   The paper's evaluation is qualitative (no numeric tables), so each
   experiment regenerates the *measurable content* of a claim from §§3-7 and
   prints the series. Protocol experiments run in virtual time on the
   deterministic simulator; conversion micro-benchmarks (E5) use Bechamel on
   the host CPU. *)

open Ntcs
open Ntcs_wire

let raw s = Convert.payload_raw (Bytes.of_string s)

let lan_cluster ?seed ?tweak () =
  Cluster.build ?seed ?tweak
    ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
    ~machines:
      [
        ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
        ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
        ("ap-host", Ntcs_sim.Machine.Apollo, [ "ether" ]);
      ]
    ~ns:"vax1" ()

let spawn_echo cluster ~machine ~name =
  ignore
    (Cluster.spawn cluster ~machine ~name (fun node ->
         match Commod.bind node ~name with
         | Error _ -> ()
         | Ok commod ->
           let rec loop () =
             (match Ali_layer.receive commod with
              | Ok env when Ali_layer.expects_reply env ->
                ignore (Ali_layer.reply commod env (raw "ok"))
              | Ok _ | Error _ -> ());
             loop ()
           in
           loop ()))

(* ------------------------------------------------------------------ *)
(* E1: name-server removal with warm caches (§3.3)                     *)
(* ------------------------------------------------------------------ *)

let e1_ns_removal () =
  Bench_util.header "E1: operation with the Name Server removed"
    "§3.3 \"the Name Server can be removed with no consequence, unless the system is reconfigured\"";
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let warm_ok = ref 0 and after_ok = ref 0 and after_fail = ref 0 in
  let new_resolution = ref "-" in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod ->
           (match Ali_layer.locate commod "svc" with
            | Error _ -> ()
            | Ok addr ->
              for _ = 1 to 10 do
                match Ali_layer.send_sync commod ~dst:addr (raw "warm") with
                | Ok _ -> incr warm_ok
                | Error _ -> ()
              done;
              (* NS is killed at t+6s; continue well after. *)
              Ntcs_sim.Sched.sleep (Node.sched node) 8_000_000;
              for _ = 1 to 10 do
                match Ali_layer.send_sync commod ~dst:addr (raw "post") with
                | Ok _ -> incr after_ok
                | Error _ -> incr after_fail
              done;
              new_resolution :=
                (match Ali_layer.locate commod "unresolved-name" with
                 | Ok _ -> "resolved (unexpected)"
                 | Error e -> Errors.to_string e))));
  Ntcs_sim.Sched.after (Cluster.sched c) 6_000_000 (fun () ->
      Name_server.stop (Cluster.primary_ns c);
      Cluster.crash c "vax1");
  Cluster.settle ~dt:60_000_000 c;
  Bench_util.table
    ~columns:[ "phase"; "sync calls ok"; "failed" ]
    [
      [ "name server up (warm-up)"; string_of_int !warm_ok; "0" ];
      [ "name server REMOVED, cached addresses"; string_of_int !after_ok;
        string_of_int !after_fail ];
    ];
  Printf.printf "\n  fresh resolution after removal: %s (expected: name-service-unavailable)\n"
    !new_resolution;
  Printf.printf "  paper-shape check: %s\n"
    (if !after_ok = 10 && !after_fail = 0 then "HOLDS — cached operation unaffected"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E2: address resolution latency, cold vs cached (§3.3)               *)
(* ------------------------------------------------------------------ *)

let e2_resolution () =
  Bench_util.header "E2: name resolution latency (cold vs cached)"
    "§3.3 address caching; §2.4 resource location primitives";
  let c = lan_cluster () in
  Cluster.settle c;
  for i = 0 to 9 do
    spawn_echo c ~machine:"sun1" ~name:(Printf.sprintf "svc%d" i)
  done;
  Cluster.settle c;
  let cold = Ntcs_util.Stats.create () and cached = Ntcs_util.Stats.create () in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod ->
           for i = 0 to 9 do
             let name = Printf.sprintf "svc%d" i in
             let t0 = Node.now node in
             (match Ali_layer.locate commod name with Ok _ | Error _ -> ());
             Ntcs_util.Stats.add cold (float_of_int (Node.now node - t0));
             for _ = 1 to 5 do
               let t0 = Node.now node in
               (match Ali_layer.locate commod name with Ok _ | Error _ -> ());
               Ntcs_util.Stats.add cached (float_of_int (Node.now node - t0))
             done
           done));
  Cluster.settle ~dt:60_000_000 c;
  let m = Cluster.metrics c in
  Bench_util.table
    ~columns:[ "lookup"; "n"; "mean"; "p95" ]
    [
      [ "cold (name server round trip)"; string_of_int (Ntcs_util.Stats.count cold);
        Bench_util.us (Ntcs_util.Stats.mean cold);
        Bench_util.us (Ntcs_util.Stats.percentile cold 95.) ];
      [ "cached (NSP-layer cache)"; string_of_int (Ntcs_util.Stats.count cached);
        Bench_util.us (Ntcs_util.Stats.mean cached);
        Bench_util.us (Ntcs_util.Stats.percentile cached 95.) ];
    ];
  Printf.printf "\n  speedup: %s   nsp cache hits: %d   ns lookups served: %d\n"
    (Bench_util.ratio (Ntcs_util.Stats.mean cold) (Ntcs_util.Stats.mean cached))
    (Ntcs_util.Metrics.get m "nsp.cache_hits")
    (Ntcs_util.Metrics.get m "ns.lookups");
  Printf.printf "  paper-shape check: %s\n"
    (if Ntcs_util.Stats.mean cached < Ntcs_util.Stats.mean cold /. 10. then
       "HOLDS — cached resolution is local (orders of magnitude cheaper)"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E3: TAdd purge (§3.4)                                               *)
(* ------------------------------------------------------------------ *)

let e3_tadd_purge () =
  Bench_util.header "E3: temporary addresses purged at first real contact"
    "§3.4 \"TAdds for any given module will be purged from all layers within the first two communications with the Name Server\"";
  (* Single-net and cross-gateway cases. *)
  let run_case ~label ~cluster ~machine =
    let c = cluster () in
    Cluster.settle c;
    let m = Cluster.metrics c in
    let purged_before = Ntcs_util.Metrics.get m "tadd.purged" in
    let ns_msgs = ref 0 in
    ignore
      (Cluster.spawn c ~machine ~name:"module" (fun node ->
           match Commod.bind node ~name:"fresh-module" with
           | Error _ -> ()
           | Ok commod ->
             ns_msgs := 1 (* registration *);
             (* second NS communication *)
             (match Ali_layer.locate commod "fresh-module" with Ok _ | Error _ -> ());
             incr ns_msgs));
    Cluster.settle ~dt:30_000_000 c;
    let purged = Ntcs_util.Metrics.get m "tadd.purged" - purged_before in
    [ label; string_of_int !ns_msgs; string_of_int purged;
      (if purged >= 1 then "yes (<= 2 exchanges)" else "NO") ]
  in
  let two_net () =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
        ]
      ~gateways:[ ("gw", "bridge", [ "ether"; "ring" ]) ]
      ~ns:"vax1" ()
  in
  Bench_util.table
    ~columns:[ "topology"; "NS exchanges"; "TAdds purged"; "purged in time?" ]
    [
      run_case ~label:"same network (direct LVC)" ~cluster:lan_cluster ~machine:"sun1";
      run_case ~label:"across a gateway (chained IVC)" ~cluster:two_net ~machine:"ap1";
    ];
  Printf.printf "\n  paper-shape check: purge happens during registration round trip in both cases\n"

(* ------------------------------------------------------------------ *)
(* E4: dynamic reconfiguration (§3.5)                                  *)
(* ------------------------------------------------------------------ *)

let e4_reconfig () =
  Bench_util.header "E4: dynamic reconfiguration under load"
    "§3.5 transparent relocation; bounded loss only during the reconfiguration itself";
  let run ~relocate =
    let c = lan_cluster () in
    Cluster.settle c;
    let received = ref 0 in
    let spec =
      {
        Ntcs_drts.Process_ctl.sp_name = "sink";
        sp_attrs = [];
        sp_body =
          (fun commod ->
            let rec loop () =
              (match Ali_layer.receive commod with
               | Ok env ->
                 incr received;
                 if Ali_layer.expects_reply env then
                   ignore (Ali_layer.reply commod env (raw "ok"))
               | Error _ -> ());
              loop ()
            in
            loop ());
      }
    in
    let pctl = Ntcs_drts.Process_ctl.create c in
    let managed = Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1" in
    Cluster.settle c;
    let sent = ref 0 and sync_ok = ref 0 and sync_err = ref 0 in
    let downtime = ref 0 in
    ignore
      (Cluster.spawn c ~machine:"vax1" ~name:"load" (fun node ->
           match Commod.bind node ~name:"load" with
           | Error _ -> ()
           | Ok commod -> (
             match Ali_layer.locate commod "sink" with
             | Error _ -> ()
             | Ok addr ->
               let last_ok = ref (Node.now node) in
               for _ = 1 to 50 do
                 (match Ali_layer.send commod ~dst:addr (raw "m") with
                  | Ok () -> incr sent
                  | Error _ -> ());
                 (match
                    Ali_layer.send_sync commod ~dst:addr ~timeout_us:1_500_000 (raw "s")
                  with
                  | Ok _ ->
                    incr sync_ok;
                    incr sent (* the sync datum also arrives at the sink *);
                    last_ok := Node.now node
                  | Error _ ->
                    incr sync_err;
                    downtime := max !downtime (Node.now node - !last_ok));
                 Ntcs_sim.Sched.sleep (Node.sched node) 250_000
               done)));
    if relocate then
      Ntcs_sim.Sched.after (Cluster.sched c) 6_000_000 (fun () ->
          ignore (Ntcs_drts.Process_ctl.relocate pctl managed ~to_machine:"sun2"));
    Cluster.settle ~dt:60_000_000 c;
    let m = Cluster.metrics c in
    ( !sent, !received, !sync_ok, !sync_err, !downtime,
      Ntcs_util.Metrics.get m "lcm.relocations" )
  in
  let s_sent, s_recv, s_ok, s_err, _, _ = run ~relocate:false in
  let r_sent, r_recv, r_ok, r_err, r_down, r_reloc = run ~relocate:true in
  Bench_util.table
    ~columns:
      [ "run"; "delivered/sent"; "sync ok"; "sync failed"; "relocations"; "max gap" ]
    [
      [ "static (control)"; Printf.sprintf "%d/%d" s_recv s_sent; string_of_int s_ok;
        string_of_int s_err; "0"; "-" ];
      [ "relocated mid-run"; Printf.sprintf "%d/%d" r_recv r_sent; string_of_int r_ok;
        string_of_int r_err; string_of_int r_reloc; Bench_util.us (float_of_int r_down) ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if s_recv = s_sent && r_sent - r_recv <= 4 && r_ok >= 45 then
       "HOLDS — static lossless; relocation costs at most a few in-flight messages"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E5: conversion-mode micro-benchmarks (§5) — Bechamel, host CPU      *)
(* ------------------------------------------------------------------ *)

let e5_conversion () =
  Bench_util.header "E5: conversion cost by mode and message size"
    "§5 image = byte copy; packed = character conversion; shift = header-only";
  let layout_of_size n =
    (* ~n bytes: mix of ints and a char array, the shape of URSA messages *)
    let ints = max 1 (n / 16) in
    let arr = max 4 (n - (ints * 4)) in
    List.init ints (fun _ -> Layout.F_i32) @ [ Layout.F_char_array arr ]
  in
  let values_of layout =
    List.map
      (function
        | Layout.F_i32 -> Layout.V_int 123456789
        | Layout.F_char_array n -> Layout.V_str (String.make (n - 1) 'd')
        | Layout.F_i8 | Layout.F_i16 | Layout.F_i64 -> Layout.V_int 1)
      layout
  in
  let sizes = [ 64; 1024; 8192 ] in
  let tests =
    List.concat_map
      (fun size ->
        let layout = layout_of_size size in
        let values = values_of layout in
        let packed_codec = Packed.of_layout layout in
        let packed_bytes = Packed.run_pack packed_codec values in
        let image_bytes = Layout.encode ~order:Endian.Be layout values in
        let header =
          Proto.make_header ~kind:Proto.Data
            ~src:(Addr.unique ~server_id:0 ~value:1)
            ~dst:(Addr.unique ~server_id:0 ~value:2)
            ~payload_len:size ()
        in
        Bechamel.
          [
            Test.make
              ~name:(Printf.sprintf "image-encode/%d" size)
              (Staged.stage (fun () -> ignore (Layout.encode ~order:Endian.Be layout values)));
            Test.make
              ~name:(Printf.sprintf "image-decode/%d" size)
              (Staged.stage (fun () ->
                   ignore (Layout.decode ~order:Endian.Be layout image_bytes)));
            Test.make
              ~name:(Printf.sprintf "packed-pack/%d" size)
              (Staged.stage (fun () -> ignore (Packed.run_pack packed_codec values)));
            Test.make
              ~name:(Printf.sprintf "packed-unpack/%d" size)
              (Staged.stage (fun () -> ignore (Packed.run_unpack packed_codec packed_bytes)));
            Test.make
              ~name:(Printf.sprintf "shift-header/%d" size)
              (Staged.stage (fun () -> ignore (Proto.encode_header header)));
          ])
      sizes
  in
  let results = Bench_util.bechamel_run tests in
  Bench_util.table ~columns:[ "operation"; "time/run" ]
    (List.map (fun (name, est) -> [ name; Bench_util.ns_per_run est ]) results);
  let get prefix size =
    match
      List.assoc_opt (Printf.sprintf "g/%s/%d" prefix size) results
    with
    | Some v -> v
    | None -> (
      match List.assoc_opt (Printf.sprintf "%s/%d" prefix size) results with
      | Some v -> v
      | None -> nan)
  in
  let img = get "image-encode" 8192 and pkd = get "packed-pack" 8192 in
  Printf.printf "\n  image vs packed at 8KB: %s cheaper\n" (Bench_util.ratio pkd img);
  Printf.printf "  paper-shape check: %s\n"
    (if (not (Float.is_nan img)) && (not (Float.is_nan pkd)) && img < pkd then
       "HOLDS — byte-copy image mode beats character conversion; adaptive choice avoids needless cost"
     else "check estimates above")

(* ------------------------------------------------------------------ *)
(* E6: adaptive mode selection (§5)                                    *)
(* ------------------------------------------------------------------ *)

let e6_adaptive () =
  Bench_util.header "E6: no needless conversions; mode adapts to relocation"
    "§5 \"results in no needless data conversions, and adapts dynamically to the environment as modules are relocated\"";
  let c = lan_cluster () in
  Cluster.settle c;
  let m = Cluster.metrics c in
  let pctl = Ntcs_drts.Process_ctl.create c in
  let spec =
    {
      Ntcs_drts.Process_ctl.sp_name = "peer";
      sp_attrs = [];
      sp_body =
        (fun commod ->
          let rec loop () =
            (match Ali_layer.receive commod with
             | Ok env when Ali_layer.expects_reply env ->
               ignore (Ali_layer.reply commod env (raw "ok"))
             | Ok _ | Error _ -> ());
            loop ()
          in
          loop ());
    }
  in
  (* Peer starts on a Sun (same representation as the Sun client). *)
  let managed = Ntcs_drts.Process_ctl.start pctl spec ~machine:"sun1" in
  Cluster.settle c;
  let snap () =
    ( Ntcs_util.Metrics.get m "conv.image_msgs.client",
      Ntcs_util.Metrics.get m "conv.packed_msgs.client" )
  in
  let before = ref (0, 0) and middle = ref (0, 0) and final = ref (0, 0) in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod -> (
           match Ali_layer.locate commod "peer" with
           | Error _ -> ()
           | Ok addr ->
             before := snap ();
             for _ = 1 to 10 do
               ignore (Ali_layer.send_sync commod ~dst:addr (raw "homo"))
             done;
             middle := snap ();
             (* Wait for the peer to be relocated onto the VAX. *)
             Ntcs_sim.Sched.sleep (Node.sched node) 6_000_000;
             for _ = 1 to 10 do
               ignore
                 (Ali_layer.send_sync commod ~dst:addr ~timeout_us:3_000_000 (raw "hetero"))
             done;
             final := snap ())));
  Ntcs_sim.Sched.after (Cluster.sched c) 4_000_000 (fun () ->
      ignore (Ntcs_drts.Process_ctl.relocate pctl managed ~to_machine:"vax1"));
  Cluster.settle ~dt:60_000_000 c;
  let b_img, b_pkd = !before and m_img, m_pkd = !middle and f_img, f_pkd = !final in
  let phase1 = (m_img - b_img, m_pkd - b_pkd) in
  let phase2 = (f_img - m_img, f_pkd - m_pkd) in
  Bench_util.table
    ~columns:[ "phase"; "image msgs"; "packed msgs" ]
    [
      [ "Sun -> Sun (identical repr)"; string_of_int (fst phase1); string_of_int (snd phase1) ];
      [ "Sun -> VAX (after relocation)"; string_of_int (fst phase2);
        string_of_int (snd phase2) ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if snd phase1 = 0 && fst phase1 >= 10 && snd phase2 >= 10 && fst phase2 <= 2 then
       "HOLDS — zero conversions between identical machines; packed mode engaged automatically after relocation"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E7: internet round trips by gateway hops (§4)                       *)
(* ------------------------------------------------------------------ *)

let e7_internet () =
  Bench_util.header "E7: round-trip latency vs gateway hops"
    "§4 chained LVCs through gateways; establishment rare, data forwarding cheap";
  (* A line of TCP LANs: client on lan0, servers at increasing distance. *)
  let hops_max = 3 in
  let nets = List.init (hops_max + 1) (fun i -> (Printf.sprintf "lan%d" i, Ntcs_sim.Net.Tcp_lan)) in
  let machines =
    ("client-m", Ntcs_sim.Machine.Sun3, [ "lan0" ])
    :: ("ns-m", Ntcs_sim.Machine.Vax, [ "lan0" ])
    :: List.init (hops_max + 1) (fun i ->
           (Printf.sprintf "srv%d" i, Ntcs_sim.Machine.Sun3, [ Printf.sprintf "lan%d" i ]))
    @ List.init hops_max (fun i ->
          ( Printf.sprintf "gwm%d" i,
            Ntcs_sim.Machine.Sun3,
            [ Printf.sprintf "lan%d" i; Printf.sprintf "lan%d" (i + 1) ] ))
  in
  let gateways =
    List.init hops_max (fun i ->
        ( Printf.sprintf "gw%d" i,
          Printf.sprintf "gwm%d" i,
          [ Printf.sprintf "lan%d" i; Printf.sprintf "lan%d" (i + 1) ] ))
  in
  let c = Cluster.build ~nets ~machines ~gateways ~ns:"ns-m" () in
  Cluster.settle c;
  for i = 0 to hops_max do
    spawn_echo c ~machine:(Printf.sprintf "srv%d" i) ~name:(Printf.sprintf "echo%d" i)
  done;
  Cluster.settle ~dt:10_000_000 c;
  let results = Array.make (hops_max + 1) (0., 0., 0.) in
  ignore
    (Cluster.spawn c ~machine:"client-m" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod ->
           for i = 0 to hops_max do
             match Ali_layer.locate commod (Printf.sprintf "echo%d" i) with
             | Error _ -> ()
             | Ok addr ->
               let t_open0 = Node.now node in
               (* First exchange includes circuit establishment. *)
               (match
                  Ali_layer.send_sync commod ~dst:addr ~timeout_us:30_000_000 (raw "warm")
                with
                | Ok _ | Error _ -> ());
               let setup = float_of_int (Node.now node - t_open0) in
               let s = Ntcs_util.Stats.create () in
               for _ = 1 to 20 do
                 let t0 = Node.now node in
                 (match
                    Ali_layer.send_sync commod ~dst:addr ~timeout_us:30_000_000 (raw "ping")
                  with
                  | Ok _ | Error _ -> ());
                 Ntcs_util.Stats.add s (float_of_int (Node.now node - t0))
               done;
               results.(i) <- (setup, Ntcs_util.Stats.mean s, Ntcs_util.Stats.percentile s 95.)
           done));
  Cluster.settle ~dt:120_000_000 c;
  Bench_util.table
    ~columns:[ "gateway hops"; "setup+first RTT"; "steady RTT (mean)"; "p95" ]
    (List.init (hops_max + 1) (fun i ->
         let setup, mean, p95 = results.(i) in
         [ string_of_int i; Bench_util.us setup; Bench_util.us mean; Bench_util.us p95 ]));
  let _, rtt0, _ = results.(0) and _, rtt3, _ = results.(hops_max) in
  Printf.printf "\n  gw.forwards total: %d\n"
    (Ntcs_util.Metrics.get (Cluster.metrics c) "gw.forwards");
  Printf.printf "  paper-shape check: %s\n"
    (if rtt0 > 0. && rtt3 > rtt0 && rtt3 < rtt0 *. 16. then
       "HOLDS — latency grows roughly linearly with hops; chains stay usable"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E8: the §6.1 recursion scenario                                     *)
(* ------------------------------------------------------------------ *)

let e8_recursion () =
  Bench_util.header "E8: recursion on a monitored first send"
    "§6.1 scenario: time stamp -> time service -> resource location -> send -> monitor, recursively";
  let run ~services =
    let tweak cfg =
      if services then { cfg with Node.monitoring = true; timestamps = true } else cfg
    in
    let c = lan_cluster ~tweak:(fun c -> c) () in
    Cluster.settle c;
    if services then begin
      ignore (Cluster.spawn c ~machine:"sun2" ~name:"time-server" (fun node ->
                Ntcs_drts.Time_service.serve node ()));
      ignore (Cluster.spawn c ~machine:"sun2" ~name:"monitor" (fun node ->
                Ntcs_drts.Monitor.serve node ()))
    end;
    spawn_echo c ~machine:"sun1" ~name:"svc";
    Cluster.settle c;
    let stats = ref (0, 0, 0) in
    let config = tweak (Cluster.config c) in
    ignore
      (Cluster.spawn c ~config ~machine:"ap-host" ~name:"app" (fun node ->
           match Commod.bind node ~name:"app" with
           | Error _ -> ()
           | Ok commod ->
             if services then begin
               Ntcs_drts.Time_service.install (Ntcs_drts.Time_service.create commod);
               Ntcs_drts.Monitor.install (Ntcs_drts.Monitor.create_client commod)
             end;
             (match Ali_layer.locate commod "svc" with
              | Error _ -> ()
              | Ok addr ->
                ignore (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 (raw "first")));
             stats := Ali_layer.recursion_stats commod));
    Cluster.settle ~dt:60_000_000 c;
    !stats
  in
  let pe, pr, pd = run ~services:false in
  let me_, mr, md = run ~services:true in
  Bench_util.table
    ~columns:[ "configuration"; "ComMod entries"; "recursive entries"; "max depth" ]
    [
      [ "monitoring+time OFF"; string_of_int pe; string_of_int pr; string_of_int pd ];
      [ "monitoring+time ON"; string_of_int me_; string_of_int mr; string_of_int md ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if mr > pr && me_ > pe then
       "HOLDS — DRTS services multiply ComMod entries and nesting, exactly the §6.1 story"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E9: the §6.3 name-server fault recursion (ablation)                 *)
(* ------------------------------------------------------------------ *)

let e9_ns_bug () =
  Bench_util.header "E9: name-server circuit break — guard ablation"
    "§6.3 fault handler recurses through the NSP \"until either the stack overflows, or the connection can be reestablished\"";
  let run ~guard =
    let tweak cfg = { cfg with Node.ns_fault_guard = guard; recursion_limit = 40 } in
    let c = lan_cluster ~tweak () in
    Cluster.settle c;
    spawn_echo c ~machine:"sun1" ~name:"svc";
    Cluster.settle c;
    let outcome = ref "did not finish" in
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"app" (fun node ->
           match Commod.bind node ~name:"app" with
           | Error _ -> ()
           | Ok commod ->
             ignore (Ali_layer.locate commod "svc");
             Ntcs_sim.Sched.sleep (Node.sched node) 4_000_000;
             outcome :=
               (match Ali_layer.locate commod "fresh-name" with
                | Ok _ -> "resolved (unexpected)"
                | Error e -> "error: " ^ Errors.to_string e)));
    Ntcs_sim.Sched.after (Cluster.sched c) 2_000_000 (fun () -> Cluster.partition c "ether");
    Cluster.settle ~dt:60_000_000 c;
    let m = Cluster.metrics c in
    let crashes =
      Ntcs_sim.Trace.matching (Ntcs_sim.World.trace (Cluster.world c)) ~cat:"sim.proc_crash"
    in
    ( !outcome,
      Ntcs_util.Metrics.get m "lcm.fault_queries",
      Ntcs_util.Metrics.get m "lcm.ns_guard_hits",
      List.length crashes )
  in
  let on_out, on_q, on_g, on_c = run ~guard:true in
  let off_out, off_q, off_g, off_c = run ~guard:false in
  Bench_util.table
    ~columns:[ "LCM guard"; "outcome"; "fault queries"; "guard hits"; "crashed procs" ]
    [
      [ "ON (the paper's patch)"; on_out; string_of_int on_q; string_of_int on_g;
        string_of_int on_c ];
      [ "OFF (the original bug)"; off_out; string_of_int off_q; string_of_int off_g;
        string_of_int off_c ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if on_c = 0 && on_g > 0 && (off_c > 0 || off_q >= 5) then
       "HOLDS — guarded faults stay bounded; unguarded ones recurse until the (simulated) stack gives out"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E10: replicated name service (§7 successor)                         *)
(* ------------------------------------------------------------------ *)

let e10_replication () =
  Bench_util.header "E10: centralized vs replicated name service under failure"
    "§7 \"the latter will be replicated for failure resiliency\"";
  let run ~replicas =
    let c =
      Cluster.build
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
        ~machines:
          ([ ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
             ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
             ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]) ]
          @ List.init replicas (fun i ->
                (Printf.sprintf "nsr%d" i, Ntcs_sim.Machine.Vax, [ "ether" ])))
        ~ns:"vax1"
        ~ns_replicas:(List.init replicas (fun i -> Printf.sprintf "nsr%d" i))
        ()
    in
    Cluster.settle c;
    spawn_echo c ~machine:"sun1" ~name:"svc";
    Cluster.settle c;
    let ok_before = ref 0 and ok_after = ref 0 and fail_after = ref 0 in
    let latency_after = Ntcs_util.Stats.create () in
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
           match Commod.bind node ~name:"client" with
           | Error _ -> ()
           | Ok commod ->
             let nsp = Commod.nsp_exn commod in
             for _ = 1 to 5 do
               Nsp_layer.invalidate nsp;
               match Ali_layer.locate commod "svc" with
               | Ok _ -> incr ok_before
               | Error _ -> ()
             done;
             Ntcs_sim.Sched.sleep (Node.sched node) 6_000_000;
             for _ = 1 to 5 do
               Nsp_layer.invalidate nsp;
               let t0 = Node.now node in
               (match Ali_layer.locate commod "svc" with
                | Ok _ ->
                  incr ok_after;
                  Ntcs_util.Stats.add latency_after (float_of_int (Node.now node - t0))
                | Error _ -> incr fail_after)
             done));
    Ntcs_sim.Sched.after (Cluster.sched c) 4_000_000 (fun () -> Cluster.crash c "vax1");
    Cluster.settle ~dt:120_000_000 c;
    (!ok_before, !ok_after, !fail_after, Ntcs_util.Stats.mean latency_after)
  in
  let cb, ca, cf, _ = run ~replicas:0 in
  let rb, ra, rf, rl = run ~replicas:2 in
  Bench_util.table
    ~columns:
      [ "configuration"; "lookups before crash"; "after crash ok"; "after crash failed";
        "post-crash latency" ]
    [
      [ "1 name server (centralized)"; string_of_int cb; string_of_int ca; string_of_int cf;
        "-" ];
      [ "3 name servers (replicated)"; string_of_int rb; string_of_int ra; string_of_int rf;
        Bench_util.us rl ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if ca = 0 && ra = 5 && rf = 0 then
       "HOLDS — centralized naming dies with its host; replicas keep resolving"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* E11: URSA end-to-end                                                *)
(* ------------------------------------------------------------------ *)

let e11_ursa () =
  Bench_util.header "E11: URSA retrieval over the NTCS"
    "§1.2 backend servers behind the NTCS; one network vs across a gateway";
  let run ~spread =
    let c =
      if spread then
        Cluster.build
          ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
          ~machines:
            [
              ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
              ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
              ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
              ("ap2", Ntcs_sim.Machine.Apollo, [ "ring" ]);
            ]
          ~gateways:[ ("gw", "bridge", [ "ether"; "ring" ]) ]
          ~ns:"vax1" ()
      else lan_cluster ()
    in
    Cluster.settle c;
    let corpus = Ursa.Corpus.generate 120 in
    let machines = if spread then [ "ap1"; "ap2" ] else [ "sun1"; "sun2" ] in
    Ursa.Host.deploy c ~machines ~partitions:4 ~corpus ~search_machine:"vax1";
    Cluster.settle ~dt:20_000_000 c;
    let lat = Ntcs_util.Stats.create () in
    let ok = ref 0 and fail = ref 0 in
    let queries =
      [ "gateway routing circuit"; "name server resolution"; "index search ranking";
        "byte ordering machine"; "portable layer module" ]
    in
    ignore
      (Cluster.spawn c ~machine:"vax1" ~name:"user" (fun node ->
           match Commod.bind node ~name:"user" with
           | Error _ -> ()
           | Ok commod ->
             let host = Ursa.Host.create commod in
             for round = 1 to 4 do
               ignore round;
               List.iter
                 (fun q ->
                   let t0 = Node.now node in
                   match Ursa.Host.search ~k:10 ~timeout_us:30_000_000 host q with
                   | Ok r when r.Ursa.Ursa_msg.sr_partitions = 4 ->
                     incr ok;
                     Ntcs_util.Stats.add lat (float_of_int (Node.now node - t0))
                   | Ok _ -> incr fail
                   | Error _ -> incr fail)
                 queries
             done));
    Cluster.settle ~dt:240_000_000 c;
    (!ok, !fail, Ntcs_util.Stats.median lat, Ntcs_util.Stats.percentile lat 95.)
  in
  let lok, lfail, lp50, lp95 = run ~spread:false in
  let sok, sfail, sp50, sp95 = run ~spread:true in
  Bench_util.table
    ~columns:[ "deployment"; "queries ok"; "failed"; "latency p50"; "p95" ]
    [
      [ "backends on one LAN"; string_of_int lok; string_of_int lfail; Bench_util.us lp50;
        Bench_util.us lp95 ];
      [ "backends across a gateway"; string_of_int sok; string_of_int sfail;
        Bench_util.us sp50; Bench_util.us sp95 ];
    ];
  Printf.printf "\n  paper-shape check: %s\n"
    (if lok = 20 && sok = 20 && sp50 > lp50 then
       "HOLDS — identical results either way; internetting costs latency, not function"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* A1 ablation: adaptive mode selection vs always-packed               *)
(* ------------------------------------------------------------------ *)

let a1_always_packed () =
  Bench_util.header "A1 (ablation): adaptive mode selection vs always-packed"
    "§5 design choice — what a system that always converts would pay (wire bytes + latency)";
  let run ~force_packed ~size =
    let tweak cfg = { cfg with Node.force_packed } in
    let c = lan_cluster ~tweak () in
    Cluster.settle c;
    spawn_echo c ~machine:"sun1" ~name:"svc";
    Cluster.settle c;
    let m = Cluster.metrics c in
    let bytes_before = ref 0 in
    let lat = Ntcs_util.Stats.create () in
    (* A structured message: ints + text, the shape that inflates most under
       character conversion. *)
    let layout =
      List.init (size / 8) (fun _ -> Layout.F_i32) @ [ Layout.F_char_array (size / 2) ]
    in
    let values =
      List.map
        (function
          | Layout.F_i32 -> Layout.V_int 305419896
          | Layout.F_char_array n -> Layout.V_str (String.make (n - 1) 'x')
          | Layout.F_i8 | Layout.F_i16 | Layout.F_i64 -> Layout.V_int 0)
        layout
    in
    let payload =
      Convert.payload
        ~image:(fun () -> Layout.encode ~order:Endian.Be layout values)
        ~packed:(fun () -> Packed.run_pack (Packed.of_layout layout) values)
    in
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
           match Commod.bind node ~name:"client" with
           | Error _ -> ()
           | Ok commod -> (
             match Ali_layer.locate commod "svc" with
             | Error _ -> ()
             | Ok addr ->
               (* Warm the circuit, then measure. *)
               ignore (Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 payload);
               bytes_before := Ntcs_util.Metrics.get m "net.bytes";
               for _ = 1 to 20 do
                 let t0 = Node.now node in
                 (match
                    Ali_layer.send_sync commod ~dst:addr ~timeout_us:10_000_000 payload
                  with
                  | Ok _ | Error _ -> ());
                 Ntcs_util.Stats.add lat (float_of_int (Node.now node - t0))
               done)));
    Cluster.settle ~dt:120_000_000 c;
    let bytes = Ntcs_util.Metrics.get m "net.bytes" - !bytes_before in
    (Ntcs_util.Stats.mean lat, bytes / 20)
  in
  let size = 4096 in
  let adaptive_lat, adaptive_bytes = run ~force_packed:false ~size in
  let forced_lat, forced_bytes = run ~force_packed:true ~size in
  Bench_util.table
    ~columns:[ "mode policy (Sun <-> Sun)"; "RTT mean"; "wire bytes / exchange" ]
    [
      [ "adaptive (the paper's design)"; Bench_util.us adaptive_lat;
        string_of_int adaptive_bytes ];
      [ "always packed (ablation)"; Bench_util.us forced_lat; string_of_int forced_bytes ];
    ];
  Printf.printf "\n  inflation: %s bytes, %s latency\n"
    (Bench_util.ratio (float_of_int forced_bytes) (float_of_int adaptive_bytes))
    (Bench_util.ratio forced_lat adaptive_lat);
  Printf.printf "  paper-shape check: %s\n"
    (if forced_bytes > adaptive_bytes && forced_lat > adaptive_lat then
       "HOLDS — needless conversion inflates the wire format and the latency"
     else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* A2 ablation: NSP-layer caching off                                  *)
(* ------------------------------------------------------------------ *)

let a2_no_cache () =
  Bench_util.header "A2 (ablation): NSP-layer caching disabled"
    "§3.3 locally cached resolutions; \"centralized topology was tolerable since this information is only required at circuit establishment time\"";
  let run ~ttl =
    let tweak cfg = { cfg with Node.ns_cache_ttl_us = ttl } in
    let c = lan_cluster ~tweak () in
    Cluster.settle c;
    for i = 0 to 4 do
      spawn_echo c ~machine:"sun1" ~name:(Printf.sprintf "svc%d" i)
    done;
    Cluster.settle c;
    let m = Cluster.metrics c in
    let lat = Ntcs_util.Stats.create () in
    ignore
      (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
           match Commod.bind node ~name:"client" with
           | Error _ -> ()
           | Ok commod ->
             for round = 1 to 10 do
               ignore round;
               for i = 0 to 4 do
                 let t0 = Node.now node in
                 (match Ali_layer.locate commod (Printf.sprintf "svc%d" i) with
                  | Ok _ | Error _ -> ());
                 Ntcs_util.Stats.add lat (float_of_int (Node.now node - t0))
               done
             done));
    Cluster.settle ~dt:120_000_000 c;
    (Ntcs_util.Stats.mean lat, Ntcs_util.Metrics.get m "ns.lookups")
  in
  let cached_lat, cached_load = run ~ttl:60_000_000 in
  let raw_lat, raw_load = run ~ttl:0 in
  Bench_util.table
    ~columns:[ "NSP cache"; "locate latency (mean)"; "name-server lookups" ]
    [
      [ "on (60s TTL)"; Bench_util.us cached_lat; string_of_int cached_load ];
      [ "off (every locate is a round trip)"; Bench_util.us raw_lat; string_of_int raw_load ];
    ];
  Printf.printf "\n  name-server load multiplier without caching: %s\n"
    (Bench_util.ratio (float_of_int raw_load) (float_of_int cached_load));
  Printf.printf "  paper-shape check: %s\n"
    (if raw_load >= cached_load * 5 && raw_lat > cached_lat *. 5. then
       "HOLDS — caching is what makes centralized naming tolerable"
     else "VIOLATED")


(* ------------------------------------------------------------------ *)
(* S1: substrate throughput (not a paper claim; engineering telemetry) *)
(* ------------------------------------------------------------------ *)

let s1_sim_throughput () =
  Bench_util.header "S1: simulation substrate throughput"
    "engineering telemetry for the reproduction itself (no paper counterpart)";
  let c = lan_cluster () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  let calls = 2_000 in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"pump" (fun node ->
         match Commod.bind node ~name:"pump" with
         | Error _ -> ()
         | Ok commod -> (
           match Ali_layer.locate commod "svc" with
           | Error _ -> ()
           | Ok addr ->
             for _ = 1 to calls do
               ignore (Ali_layer.send_sync commod ~dst:addr (raw "x"))
             done)));
  let t0 = Unix.gettimeofday () in
  Cluster.settle ~dt:3_600_000_000 c;
  let wall = Unix.gettimeofday () -. t0 in
  let sched = Cluster.sched c in
  let events = Ntcs_sim.Sched.events_executed sched in
  let virtual_s = float_of_int (Ntcs_sim.World.now (Cluster.world c)) /. 1_000_000. in
  Bench_util.table
    ~columns:[ "metric"; "value" ]
    [
      [ "synchronous NTCS calls"; string_of_int calls ];
      [ "scheduler events executed"; string_of_int events ];
      [ "virtual time simulated"; Printf.sprintf "%.1f s" virtual_s ];
      [ "host wall clock"; Printf.sprintf "%.3f s" wall ];
      [ "events / host second";
        (if wall > 0. then Printf.sprintf "%.0f" (float_of_int events /. wall) else "n/a") ];
      [ "NTCS calls / host second";
        (if wall > 0. then Printf.sprintf "%.0f" (float_of_int calls /. wall) else "n/a") ];
    ];
  Printf.printf "\n  (experiments are CPU-cheap: protocol time is virtual)\n"

(* ------------------------------------------------------------------ *)
(* OBS: observability-plane snapshot (DESIGN.md §10)                   *)
(* ------------------------------------------------------------------ *)

(* Runs a fixed-seed reference workload and snapshots the obs registry to
   BENCH_obs.json via the deterministic exporter: equal seeds produce
   byte-identical files, so the artifact doubles as a regression oracle for
   the whole measurement pipeline. *)
let obs_snapshot () =
  Bench_util.header "OBS: observability-plane snapshot"
    "engineering telemetry for the reproduction itself (no paper counterpart)";
  let c = lan_cluster ~seed:42 () in
  Cluster.settle c;
  spawn_echo c ~machine:"sun1" ~name:"svc";
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"meter" (fun node ->
         match Commod.bind node ~name:"meter" with
         | Error _ -> ()
         | Ok commod -> (
           match Ali_layer.locate commod "svc" with
           | Error _ -> ()
           | Ok addr ->
             for _ = 1 to 20 do
               ignore (Ali_layer.send_sync commod ~dst:addr (raw "measured"));
               Ntcs_sim.Sched.sleep (Node.sched node) 200_000
             done)));
  Cluster.settle ~dt:30_000_000 c;
  let r = Cluster.metrics c in
  let rows =
    List.map
      (fun (name, h) ->
        [
          name;
          string_of_int (Ntcs_obs.Histo.count h);
          string_of_int (Ntcs_obs.Histo.p50 h);
          string_of_int (Ntcs_obs.Histo.p95 h);
          string_of_int (Ntcs_obs.Histo.p99 h);
          string_of_int (Ntcs_obs.Histo.max_value h);
        ])
      (Ntcs_obs.Registry.histos_alist r)
  in
  Bench_util.table ~columns:[ "histogram"; "count"; "p50"; "p95"; "p99"; "max" ] rows;
  let path = "BENCH_obs.json" in
  let oc = open_out path in
  output_string oc (Ntcs_obs.Export.stats_json r);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\n  wrote %s (%d circuits, %d span events; seed-stable bytes)\n" path
    (Ntcs_obs.Registry.circuits_allocated r)
    (Ntcs_obs.Registry.span_count r)

(* ------------------------------------------------------------------ *)
(* HOT: zero-copy hot-path baseline (writes BENCH_hotpath.json)        *)
(* ------------------------------------------------------------------ *)

(* The pre-view pipeline materialised every forwarded frame twice: the
   gateway decoded it (one payload copy), rebuilt the header record, and
   re-encoded header + payload into a fresh buffer (a second, larger
   copy). The view pipeline wraps the received bytes once and pokes two
   header words in place. Both shapes are measured here on the host CPU
   (micro), and the 3-gateway E7 chain is driven end to end so the
   pipeline's own meters — frame.bytes_copied, pool.hits/misses — report
   what the running system actually does (macro). The full run writes
   BENCH_hotpath.json as the repo's first performance baseline. *)

let hot_payload_len = 256

let hot_frame () =
  let payload = Bytes.make hot_payload_len 'x' in
  let h =
    Proto.make_header ~kind:Proto.Data
      ~src:(Addr.unique ~server_id:1 ~value:7)
      ~dst:(Addr.unique ~server_id:2 ~value:9)
      ~ivc:3 ~payload_len:hot_payload_len ()
  in
  (h, payload, Proto.encode_frame h payload)

(* One gateway transit, legacy shape: decode (copies the payload out),
   rebuild the header, re-encode (copies header + payload back in). *)
let legacy_hop frame =
  let h, payload = Proto.decode_frame frame in
  ignore (Proto.encode_frame { h with Proto.ivc = h.Proto.ivc + 1; hops = 1 } payload)

(* One gateway transit, view shape: wrap, decode the header lazily, poke
   two words in place. [patch_hops 1] rather than [h.hops + 1] so repeated
   benchmark iterations cannot walk the count into the E7 overflow guard. *)
let view_hop frame =
  let v = Proto.Frame.of_bytes frame in
  let h = Proto.Frame.header v in
  Proto.Frame.patch_ivc v (h.Proto.ivc + 1);
  Proto.Frame.patch_hops v 1

let minor_words_per ~n f =
  f ();
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int n

(* The parameterised E7 line: client on lan0, one echo server [hops]
   gateways away. Returns the meters the macro table and the JSON need. *)
type hot_chain_result = {
  hc_hops : int;
  hc_ok : int;
  hc_frames_sent : int;
  hc_forwards : int;
  hc_copied_count : int;
  hc_copied_sum : int;
  hc_pool_hits : int;
  hc_pool_misses : int;
  hc_wall_s : float;
  hc_minor_words_per_msg : float;
}

let hot_chain ~hops ~msgs ~force_packed () =
  let nets =
    List.init (hops + 1) (fun i -> (Printf.sprintf "lan%d" i, Ntcs_sim.Net.Tcp_lan))
  in
  let machines =
    ("client-m", Ntcs_sim.Machine.Sun3, [ "lan0" ])
    :: ("ns-m", Ntcs_sim.Machine.Vax, [ "lan0" ])
    :: (Printf.sprintf "srv%d" hops, Ntcs_sim.Machine.Sun3, [ Printf.sprintf "lan%d" hops ])
    :: List.init hops (fun i ->
           ( Printf.sprintf "gwm%d" i,
             Ntcs_sim.Machine.Sun3,
             [ Printf.sprintf "lan%d" i; Printf.sprintf "lan%d" (i + 1) ] ))
  in
  let gateways =
    List.init hops (fun i ->
        ( Printf.sprintf "gw%d" i,
          Printf.sprintf "gwm%d" i,
          [ Printf.sprintf "lan%d" i; Printf.sprintf "lan%d" (i + 1) ] ))
  in
  let tweak cfg = if force_packed then { cfg with Node.force_packed = true } else cfg in
  let c = Cluster.build ~seed:42 ~tweak ~nets ~machines ~gateways ~ns:"ns-m" () in
  Cluster.settle c;
  spawn_echo c ~machine:(Printf.sprintf "srv%d" hops) ~name:"far";
  Cluster.settle ~dt:10_000_000 c;
  let ok = ref 0 in
  (* A structured payload, so [force_packed] actually changes the rendered
     bytes (a raw payload would bypass conversion-mode selection). Image
     size = hot_payload_len. *)
  let layout =
    List.init (hot_payload_len / 8) (fun _ -> Layout.F_i32)
    @ [ Layout.F_char_array (hot_payload_len / 2) ]
  in
  let values =
    List.map
      (function
        | Layout.F_i32 -> Layout.V_int 305419896
        | Layout.F_char_array n -> Layout.V_str (String.make (n - 1) 'x')
        | Layout.F_i8 | Layout.F_i16 | Layout.F_i64 -> Layout.V_int 0)
      layout
  in
  let payload =
    Convert.payload
      ~image:(fun () -> Layout.encode ~order:Endian.Be layout values)
      ~packed:(fun () -> Packed.run_pack (Packed.of_layout layout) values)
  in
  ignore
    (Cluster.spawn c ~machine:"client-m" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod -> (
           match Ali_layer.locate commod "far" with
           | Error _ -> ()
           | Ok addr ->
             for _ = 1 to msgs do
               match Ali_layer.send_sync commod ~dst:addr ~timeout_us:30_000_000 payload with
               | Ok _ -> incr ok
               | Error _ -> ()
             done)));
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  Cluster.settle ~dt:180_000_000 c;
  let minor = Gc.minor_words () -. w0 in
  let wall = Unix.gettimeofday () -. t0 in
  let r = Cluster.metrics c in
  let copied = Ntcs_obs.Registry.histo r "frame.bytes_copied" in
  {
    hc_hops = hops;
    hc_ok = !ok;
    hc_frames_sent = Ntcs_util.Metrics.get r "nd.frames_sent";
    hc_forwards = Ntcs_util.Metrics.get r "gw.forwards";
    hc_copied_count = Ntcs_obs.Histo.count copied;
    hc_copied_sum = Ntcs_obs.Histo.sum copied;
    hc_pool_hits = Ntcs_util.Metrics.get r "pool.hits";
    hc_pool_misses = Ntcs_util.Metrics.get r "pool.misses";
    hc_wall_s = wall;
    hc_minor_words_per_msg = (if !ok > 0 then minor /. float_of_int !ok else minor);
  }

let hot_path ~smoke () =
  Bench_util.header
    (if smoke then "HOT (smoke): zero-copy hot path, 1-second slice"
     else "HOT: zero-copy hot-path baseline")
    "perf engineering for the reproduction itself (no paper counterpart)";
  let quota = if smoke then 0.05 else 0.5 in
  let n = if smoke then 2_000 else 50_000 in

  (* --- micro: one gateway transit, legacy vs view --- *)
  let _, _, frame = hot_frame () in
  let legacy_copied = (2 * hot_payload_len) + Proto.header_bytes in
  let view_copied = 0 in
  let timings =
    Bench_util.bechamel_run ~quota
      [
        Bechamel.Test.make ~name:"legacy decode+re-encode"
          (Bechamel.Staged.stage (fun () -> legacy_hop frame));
        Bechamel.Test.make ~name:"view patch-in-place"
          (Bechamel.Staged.stage (fun () -> view_hop frame));
      ]
  in
  let ns_of name = Option.value ~default:nan (List.assoc_opt ("g/" ^ name) timings) in
  let legacy_ns = ns_of "legacy decode+re-encode" and view_ns = ns_of "view patch-in-place" in
  let legacy_words = minor_words_per ~n (fun () -> legacy_hop frame) in
  let view_words = minor_words_per ~n (fun () -> view_hop frame) in
  Bench_util.table
    ~columns:[ "per gateway transit (256 B payload)"; "bytes copied"; "ns/hop"; "minor words/hop" ]
    [
      [ "legacy decode + re-encode"; string_of_int legacy_copied;
        Bench_util.ns_per_run legacy_ns; Printf.sprintf "%.1f" legacy_words ];
      [ "view + 2-word patch"; string_of_int view_copied;
        Bench_util.ns_per_run view_ns; Printf.sprintf "%.1f" view_words ];
    ];
  Printf.printf "\n  copy reduction per forwarded frame: %dx (%d B -> %d B)\n"
    (legacy_copied / max 1 view_copied) legacy_copied view_copied;

  (* --- micro: the send path, fresh buffer vs pooled encode_into, and the
     pooled path again with the sanitizer armed (poison fill on release,
     canary scan on re-alloc) — the price of running soaks sanitized. --- *)
  let h, payload, _ = hot_frame () in
  let pool = Ntcs_util.Pool.create () in
  let spool = Ntcs_util.Pool.create () in
  Ntcs_util.Pool.set_sanitize spool true;
  let fresh_send () = ignore (Proto.encode_frame h payload) in
  let send_via p () =
    let buf = Ntcs_util.Pool.alloc p (Proto.header_bytes + hot_payload_len) in
    ignore (Proto.Frame.encode_into h ~payload buf ~off:0);
    Ntcs_util.Pool.release p buf
  in
  let pooled_send = send_via pool and sanitized_send = send_via spool in
  let send_timings =
    Bench_util.bechamel_run ~quota
      [
        Bechamel.Test.make ~name:"fresh" (Bechamel.Staged.stage fresh_send);
        Bechamel.Test.make ~name:"pooled" (Bechamel.Staged.stage pooled_send);
        Bechamel.Test.make ~name:"sanitized" (Bechamel.Staged.stage sanitized_send);
      ]
  in
  let send_ns name = Option.value ~default:nan (List.assoc_opt ("g/" ^ name) send_timings) in
  let fresh_ns = send_ns "fresh"
  and pooled_ns = send_ns "pooled"
  and sanitized_ns = send_ns "sanitized" in
  let fresh_words = minor_words_per ~n fresh_send in
  let pooled_words = minor_words_per ~n pooled_send in
  let sanitized_words = minor_words_per ~n sanitized_send in

  (* --- micro: the pooled send again with a race-checker access hook on
     the path, monitor disarmed (the default everywhere outside @race).
     The guard row: unarmed hooks must cost the same as no hooks. --- *)
  let gsched = Ntcs_sim.Sched.create () in
  let gcell =
    Ntcs_sim.Sched.register_cell gsched ~name:"bench.cell"
      ~policy:Ntcs_sim.Sched.Exclusive
  in
  let race_unarmed_send () =
    Ntcs_sim.Sched.access gsched gcell ~write:true;
    pooled_send ()
  in
  let race_timings =
    Bench_util.bechamel_run ~quota
      [ Bechamel.Test.make ~name:"race-unarmed" (Bechamel.Staged.stage race_unarmed_send) ]
  in
  let race_unarmed_ns =
    Option.value ~default:nan (List.assoc_opt "g/race-unarmed" race_timings)
  in
  let race_unarmed_words = minor_words_per ~n race_unarmed_send in
  Bench_util.table
    ~columns:[ "per send (256 B payload)"; "ns/send"; "minor words/send" ]
    [
      [ "fresh buffer each send"; Bench_util.ns_per_run fresh_ns;
        Printf.sprintf "%.1f" fresh_words ];
      [ "pooled encode_into"; Bench_util.ns_per_run pooled_ns;
        Printf.sprintf "%.1f" pooled_words ];
      [ "pooled + sanitizer armed"; Bench_util.ns_per_run sanitized_ns;
        Printf.sprintf "%.1f" sanitized_words ];
      [ "pooled + race hooks unarmed"; Bench_util.ns_per_run race_unarmed_ns;
        Printf.sprintf "%.1f" race_unarmed_words ];
    ];

  (* --- macro: drive the chain and read the pipeline's own meters --- *)
  let msgs = if smoke then 5 else 40 in
  let chains =
    if smoke then [ hot_chain ~hops:1 ~msgs ~force_packed:false () ]
    else
      [
        hot_chain ~hops:1 ~msgs ~force_packed:false ();
        hot_chain ~hops:3 ~msgs ~force_packed:false ();
      ]
  in
  let pct a b = if a + b = 0 then "n/a" else Printf.sprintf "%.1f%%" (100. *. float_of_int a /. float_of_int (a + b)) in
  Bench_util.table
    ~columns:
      [ "gateway hops"; "calls ok"; "frames sent"; "gw forwards"; "bytes copied (sum)";
        "copied/forward"; "pool hit rate"; "msgs/host-s"; "minor words/msg" ]
    (List.map
       (fun r ->
         [
           string_of_int r.hc_hops;
           string_of_int r.hc_ok;
           string_of_int r.hc_frames_sent;
           string_of_int r.hc_forwards;
           string_of_int r.hc_copied_sum;
           (if r.hc_forwards = 0 then "n/a"
            else Printf.sprintf "%.1f" (float_of_int r.hc_copied_sum /. float_of_int r.hc_forwards));
           pct r.hc_pool_hits r.hc_pool_misses;
           (if r.hc_wall_s > 0. then Printf.sprintf "%.0f" (float_of_int r.hc_ok /. r.hc_wall_s)
            else "n/a");
           Printf.sprintf "%.0f" r.hc_minor_words_per_msg;
         ])
       chains);
  Printf.printf
    "\n  (bytes copied counts every histogram observation on the frame path;\n\
    \   forwarded frames observe 0 — the sum is send-side materialisation only)\n";

  (* --- modes: image vs forced packed over one gateway --- *)
  let modes =
    if smoke then []
    else
      [
        ("image", hot_chain ~hops:1 ~msgs ~force_packed:false ());
        ("packed (forced)", hot_chain ~hops:1 ~msgs ~force_packed:true ());
      ]
  in
  if modes <> [] then
    Bench_util.table
      ~columns:[ "conversion mode"; "calls ok"; "bytes copied (sum)"; "minor words/msg" ]
      (List.map
         (fun (label, r) ->
           [
             label; string_of_int r.hc_ok; string_of_int r.hc_copied_sum;
             Printf.sprintf "%.0f" r.hc_minor_words_per_msg;
           ])
         modes);

  (* --- artifact --- *)
  if not smoke then begin
    let b = Buffer.create 2048 in
    let chain_json r =
      Printf.sprintf
        "{\"hops\":%d,\"calls_ok\":%d,\"frames_sent\":%d,\"gw_forwards\":%d,\
         \"bytes_copied_sum\":%d,\"bytes_copied_count\":%d,\"pool_hits\":%d,\
         \"pool_misses\":%d,\"wall_s\":%.3f,\"minor_words_per_msg\":%.0f}"
        r.hc_hops r.hc_ok r.hc_frames_sent r.hc_forwards r.hc_copied_sum
        r.hc_copied_count r.hc_pool_hits r.hc_pool_misses r.hc_wall_s
        r.hc_minor_words_per_msg
    in
    Buffer.add_string b "{\n  \"schema\": \"ntcs.bench.hotpath/1\",\n";
    Buffer.add_string b
      (Printf.sprintf "  \"payload_bytes\": %d,\n  \"header_bytes\": %d,\n"
         hot_payload_len Proto.header_bytes);
    Buffer.add_string b
      (Printf.sprintf
         "  \"micro\": {\n\
         \    \"legacy_bytes_copied_per_forward\": %d,\n\
         \    \"view_bytes_copied_per_forward\": %d,\n\
         \    \"copy_reduction_factor\": %d,\n\
         \    \"legacy_ns_per_hop\": %.0f,\n\
         \    \"view_ns_per_hop\": %.0f,\n\
         \    \"legacy_minor_words_per_hop\": %.1f,\n\
         \    \"view_minor_words_per_hop\": %.1f,\n\
         \    \"fresh_minor_words_per_send\": %.1f,\n\
         \    \"pooled_minor_words_per_send\": %.1f,\n\
         \    \"fresh_ns_per_send\": %.0f,\n\
         \    \"pooled_ns_per_send\": %.0f,\n\
         \    \"sanitized_ns_per_send\": %.0f,\n\
         \    \"sanitized_minor_words_per_send\": %.1f,\n\
         \    \"race_unarmed_ns_per_send\": %.0f,\n\
         \    \"race_unarmed_minor_words_per_send\": %.1f\n\
         \  },\n"
         legacy_copied view_copied (legacy_copied / max 1 view_copied)
         legacy_ns view_ns legacy_words view_words fresh_words pooled_words
         fresh_ns pooled_ns sanitized_ns sanitized_words race_unarmed_ns
         race_unarmed_words);
    Buffer.add_string b "  \"chains\": [\n    ";
    Buffer.add_string b (String.concat ",\n    " (List.map chain_json chains));
    Buffer.add_string b "\n  ],\n  \"modes\": {\n    ";
    Buffer.add_string b
      (String.concat ",\n    "
         (List.map
            (fun (label, r) ->
              Printf.sprintf "\"%s\": %s"
                (if label = "image" then "image" else "packed")
                (chain_json r))
            modes));
    Buffer.add_string b "\n  }\n}\n";
    let path = "BENCH_hotpath.json" in
    let oc = open_out path in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "\n  wrote %s (host-timing fields vary per machine; copy/alloc fields do not)\n"
      path
  end

let hot_full () = hot_path ~smoke:false ()
let hot_smoke () = hot_path ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* PAR: domain-parallel frames/sec vs domain count                     *)
(*      (writes BENCH_parallel.json)                                   *)

(* Each shard hosts the full two-network reference topology (ether +
   apollo ring, one prime gateway, NS on the vax) with an echo service on
   the ring side and a client on the ether side, so every call crosses
   the gateway; after each call the client passes a token to the next
   shard over a barrier channel, so the shards are genuinely coupled at
   call cadence, not embarrassingly parallel. Output is bit-deterministic
   for any worker count (DESIGN.md §14); the wall clock is not, which is
   the point of measuring it. *)

let par_quantum = 5_000
let par_until = 30_000_000

type par_row = {
  pw_domains : int;
  pw_calls_ok : int;
  pw_frames : int;
  pw_events : int;
  pw_max_shard_events : int;
  pw_epochs : int;
  pw_cross : int;
  pw_wall_s : float;
}

let par_run ~domains ~msgs () =
  let module Par = Ntcs_sim.World.Par in
  let p =
    Par.create ~quantum:par_quantum
      { Ntcs_sim.World.Config.default with Ntcs_sim.World.Config.domains }
  in
  let n = Par.shard_count p in
  let oks = Array.make n 0 in
  for i = 0 to n - 1 do
    let c =
      Cluster.build
        ~world:(Par.shard p i)
        ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan); ("ring", Ntcs_sim.Net.Mbx_ring) ]
        ~machines:
          [
            ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
            ("bridge", Ntcs_sim.Machine.Sun3, [ "ether"; "ring" ]);
            ("ap1", Ntcs_sim.Machine.Apollo, [ "ring" ]);
            ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ]
        ~gateways:[ ("bridge-gw", "bridge", [ "ether"; "ring" ]) ]
        ~ns:"vax1" ()
    in
    spawn_echo c ~machine:"ap1" ~name:"svc";
    let out = Par.chan p ~src:i ~dst:((i + 1) mod n) ~latency:par_quantum in
    let dst = Par.shard p ((i + 1) mod n) in
    Ntcs_sim.Barrier.Chan.set_handler out (fun k ->
        Ntcs_sim.World.record dst ~cat:"par.token" ~actor:"bench" (string_of_int k));
    ignore
      (Cluster.spawn c ~machine:"sun1" ~name:"client" (fun node ->
           Ntcs_sim.Sched.sleep (Node.sched node) 2_500_000;
           match Commod.bind node ~name:"client" with
           | Error _ -> ()
           | Ok commod -> (
             match Ali_layer.locate commod "svc" with
             | Error _ -> ()
             | Ok addr ->
               for k = 1 to msgs do
                 (match Ali_layer.send_sync commod ~dst:addr (raw "x") with
                  | Ok _ -> oks.(i) <- oks.(i) + 1
                  | Error _ -> ());
                 Ntcs_sim.Barrier.Chan.send out k
               done)))
  done;
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  Par.run ~until:par_until ~workers:domains p;
  let wall = Unix.gettimeofday () -. t0 in
  let frames =
    Array.fold_left
      (fun acc w -> acc + Ntcs_util.Metrics.get (Ntcs_sim.World.metrics w) "nd.frames_sent")
      0 (Par.shards p)
  in
  let per_shard = Par.events_per_shard p in
  {
    pw_domains = domains;
    pw_calls_ok = Array.fold_left ( + ) 0 oks;
    pw_frames = frames;
    pw_events = Array.fold_left ( + ) 0 per_shard;
    pw_max_shard_events = Array.fold_left max 0 per_shard;
    pw_epochs = Par.epochs p;
    pw_cross = Par.messages_exchanged p;
    pw_wall_s = wall;
  }

let par_bench ~smoke () =
  Bench_util.header
    (if smoke then "PAR (smoke): 1/2-domain slice of the parallel-world bench"
     else "PAR: domain-parallel frames/sec vs domain count")
    "engineering telemetry for the reproduction itself (no paper counterpart)";
  let cores = Domain.recommended_domain_count () in
  let msgs = if smoke then 10 else 100 in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let rows = List.map (fun d -> par_run ~domains:d ~msgs ()) domain_counts in
  let base = List.hd rows in
  let fps r = if r.pw_wall_s > 0. then float_of_int r.pw_frames /. r.pw_wall_s else 0. in
  let speedup r = if fps base > 0. then fps r /. fps base else 0. in
  (* Structural speedup: with one core per shard and free barriers, wall
     time would be the slowest shard's, so total/max events bounds the
     achievable ratio. On a [cores]-core host the wall-clock ratio cannot
     exceed [cores], whatever the topology. *)
  let structural r =
    if r.pw_max_shard_events > 0 then
      float_of_int r.pw_events /. float_of_int r.pw_max_shard_events
    else 0.
  in
  Printf.printf "  host cores available to domains: %d\n\n" cores;
  Bench_util.table
    ~columns:
      [ "domains"; "calls ok"; "frames"; "events"; "epochs"; "cross msgs";
        "wall s"; "frames/s"; "vs 1 domain"; "structural" ]
    (List.map
       (fun r ->
         [
           string_of_int r.pw_domains;
           string_of_int r.pw_calls_ok;
           string_of_int r.pw_frames;
           string_of_int r.pw_events;
           string_of_int r.pw_epochs;
           string_of_int r.pw_cross;
           Printf.sprintf "%.3f" r.pw_wall_s;
           Printf.sprintf "%.0f" (fps r);
           Printf.sprintf "%.2fx" (speedup r);
           Printf.sprintf "%.2fx" (structural r);
         ])
       rows);
  Printf.printf
    "\n  (frames/s is wall-clock and host-dependent; on a %d-core host the\n\
    \   wall ratio is bounded by %d whatever the shard count — `structural`\n\
    \   is the events-balance bound a multi-core host could approach)\n"
    cores cores;
  if not smoke then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"schema\": \"ntcs.bench.parallel/1\",\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"host_cores\": %d,\n  \"quantum_us\": %d,\n  \"msgs_per_shard\": %d,\n"
         cores par_quantum msgs);
    Buffer.add_string b "  \"frames_per_sec_vs_domains\": [\n    ";
    Buffer.add_string b
      (String.concat ",\n    "
         (List.map
            (fun r ->
              Printf.sprintf
                "{\"domains\":%d,\"workers\":%d,\"calls_ok\":%d,\"frames\":%d,\
                 \"events\":%d,\"epochs\":%d,\"cross_messages\":%d,\
                 \"wall_s\":%.3f,\"frames_per_sec\":%.0f,\
                 \"speedup_vs_1_domain\":%.2f,\"structural_speedup\":%.2f}"
                r.pw_domains r.pw_domains r.pw_calls_ok r.pw_frames r.pw_events
                r.pw_epochs r.pw_cross r.pw_wall_s (fps r) (speedup r)
                (structural r))
            rows));
    Buffer.add_string b "\n  ],\n";
    Buffer.add_string b
      "  \"note\": \"wall-clock fields are host-dependent; speedup_vs_1_domain \
       is bounded by host_cores (1 on a single-core host), while \
       structural_speedup is the events-balance bound a multi-core host \
       could approach. Simulation output is bit-identical for every worker \
       count.\"\n}\n";
    let oc = open_out "BENCH_parallel.json" in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "\n  wrote BENCH_parallel.json (wall fields vary per machine; counts do not)\n"
  end

let par_full () = par_bench ~smoke:false ()
let par_smoke () = par_bench ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* NAMING: the sharded naming plane (writes BENCH_naming.json)         *)
(* ------------------------------------------------------------------ *)

(* Three measurements over the DESIGN.md §15 plane. (1) Lookup latency
   against database size: one server preloaded with 10^3..10^6 names,
   versioned lookups timed on the host CPU in batches, exact percentiles
   over the batch means — the by-name index should keep the curve flat.
   (2) Cache effectiveness: a four-shard world where a client re-resolves
   a working set round after round; everything past round one should be
   answered by the NSP cache (>= 90% hit rate). (3) A relocation storm:
   the service's machine crashes and a new generation re-registers,
   twice, with the client polling throughout — recovery time after the
   final relocation, measured with the lookup cache on (versioned
   invalidation doing the work) and off (ttl 0, every resolve a round
   trip) — the cache must not slow recovery down. *)

let naming_lookup_samples ~names ~batches ~batch =
  let c =
    Cluster.build
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:[ ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]) ]
      ~ns:"vax1" ()
  in
  Cluster.settle c;
  let ns = Cluster.primary_ns c in
  Name_server.preload ns
    (List.init names (fun i -> (Printf.sprintf "name-%07d" i, [])));
  let rng = Ntcs_util.Rng.create (0x5EED + names) in
  let stats = Ntcs_util.Stats.create () in
  (* Warm the allocator and the hash tables before measuring. *)
  for _ = 1 to batch do
    ignore
      (Name_server.handle_request ns
         (Ns_proto.Lookup_v (Printf.sprintf "name-%07d" (Ntcs_util.Rng.int rng names), 0)))
  done;
  for _ = 1 to batches do
    let queries =
      Array.init batch (fun _ ->
          Ns_proto.Lookup_v (Printf.sprintf "name-%07d" (Ntcs_util.Rng.int rng names), 0))
    in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun q -> ignore (Name_server.handle_request ns q)) queries;
    let dt = Unix.gettimeofday () -. t0 in
    Ntcs_util.Stats.add stats (dt *. 1e9 /. float_of_int batch)
  done;
  stats

let sharded_config ?(ttl = Node.default_config.Node.ns_cache_ttl_us)
    () =
  let tweak cfg = { cfg with Node.ns_cache_ttl_us = ttl } in
  let build ?faults () =
    Cluster.build
      ~config:
        {
          Ntcs_sim.World.Config.default with
          Ntcs_sim.World.Config.naming =
            { Ntcs_sim.World.Config.shards = 4; cache_capacity = 512 };
          faults;
        }
      ~tweak
      ~nets:[ ("ether", Ntcs_sim.Net.Tcp_lan) ]
      ~machines:
        [
          ("vax1", Ntcs_sim.Machine.Vax, [ "ether" ]);
          ("sun1", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ("sun2", Ntcs_sim.Machine.Sun3, [ "ether" ]);
          ("ap1", Ntcs_sim.Machine.Apollo, [ "ether" ]);
        ]
      ~ns:"vax1" ~ns_replicas:[ "sun1"; "sun2" ] ()
  in
  build

let naming_cache_run ~rounds ~working_set =
  let c = sharded_config () () in
  Cluster.settle c;
  let names = List.init working_set (fun i -> Printf.sprintf "svc%d" i) in
  List.iter (fun name -> spawn_echo c ~machine:"ap1" ~name) names;
  Cluster.settle c;
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod ->
           for _ = 1 to rounds do
             List.iter
               (fun name -> match Ali_layer.locate commod name with Ok _ | Error _ -> ())
               names;
             Ntcs_sim.Sched.sleep (Node.sched node) 100_000
           done));
  Cluster.settle ~dt:(200_000 * rounds + 10_000_000) c;
  Cluster.metrics c

type storm_row = {
  st_label : string;
  st_recovery_us : int; (* virtual time from the last relocation to recovery *)
  st_ns_lookups : int;
  st_hits : int;
  st_stale : int;
  st_floor_raises : int;
}

let naming_storm_run ~label ~ttl =
  let last_relocation = 15_000_000 in
  let c =
    sharded_config ~ttl ()
      ~faults:
        {
          Ntcs_sim.Faults.seed = 0xBE9C;
          rules = [];
          schedule =
            [
              (6_000_000, Ntcs_sim.Faults.Crash "ap1");
              (8_000_000, Ntcs_sim.Faults.Restart "ap1");
              (12_000_000, Ntcs_sim.Faults.Crash "ap1");
              (14_000_000, Ntcs_sim.Faults.Restart "ap1");
            ];
        }
      ()
  in
  Cluster.settle c;
  spawn_echo c ~machine:"ap1" ~name:"svc";
  Cluster.settle c;
  let respawn at =
    Ntcs_sim.Sched.at (Cluster.sched c) at (fun () ->
        spawn_echo c ~machine:"ap1" ~name:"svc")
  in
  respawn 9_000_000;
  respawn last_relocation;
  let recovered = ref (-1) in
  ignore
    (Cluster.spawn c ~machine:"sun2" ~name:"client" (fun node ->
         match Commod.bind node ~name:"client" with
         | Error _ -> ()
         | Ok commod ->
           let sched = Node.sched node in
           let rec poll () =
             if Ntcs_sim.Sched.now sched > 35_000_000 || !recovered >= 0 then ()
             else begin
               (match Ali_layer.locate commod "svc" with
                | Error _ -> ()
                | Ok addr -> (
                  match
                    Ali_layer.send_sync commod ~dst:addr ~timeout_us:800_000 (raw "probe")
                  with
                  | Ok _ when Ntcs_sim.Sched.now sched > last_relocation ->
                    recovered := Ntcs_sim.Sched.now sched
                  | Ok _ | Error _ -> ()));
               Ntcs_sim.Sched.sleep sched 800_000;
               poll ()
             end
           in
           poll ()));
  Cluster.settle ~dt:40_000_000 c;
  let m = Cluster.metrics c in
  {
    st_label = label;
    st_recovery_us = (if !recovered < 0 then -1 else !recovered - last_relocation);
    st_ns_lookups = Ntcs_util.Metrics.get m "ns.lookups";
    st_hits = Ntcs_util.Metrics.get m "nsp.cache_hits";
    st_stale = Ntcs_util.Metrics.get m "nsp.cache_stale";
    st_floor_raises = Ntcs_util.Metrics.get m "nsp.cache_invalidations";
  }

let naming_bench ~smoke () =
  Bench_util.header
    (if smoke then "NAMING (smoke): sharded naming-plane slice"
     else "NAMING: sharded naming plane (writes BENCH_naming.json)")
    "DESIGN.md §15; §3.3 resolution caching under §3.5 reconfiguration";
  (* (1) lookup latency vs database size *)
  let name_counts = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ] in
  let batches = if smoke then 40 else 100 in
  let batch = 200 in
  let latency_rows =
    List.map (fun n -> (n, naming_lookup_samples ~names:n ~batches ~batch)) name_counts
  in
  Printf.printf "  versioned lookup latency vs preloaded names (host ns/lookup, batch means):\n\n";
  Bench_util.table
    ~columns:[ "names"; "batches"; "p50"; "p95"; "p99" ]
    (List.map
       (fun (n, s) ->
         [
           string_of_int n;
           string_of_int (Ntcs_util.Stats.count s);
           Printf.sprintf "%.0f ns" (Ntcs_util.Stats.percentile s 50.);
           Printf.sprintf "%.0f ns" (Ntcs_util.Stats.percentile s 95.);
           Printf.sprintf "%.0f ns" (Ntcs_util.Stats.percentile s 99.);
         ])
       latency_rows);
  (* (2) cache hit rate on a repeated working set *)
  let rounds = if smoke then 10 else 50 in
  let working_set = 6 in
  let m = naming_cache_run ~rounds ~working_set in
  let hits = Ntcs_util.Metrics.get m "nsp.cache_hits" in
  let stale = Ntcs_util.Metrics.get m "nsp.cache_stale" in
  let misses = Ntcs_util.Metrics.get m "nsp.cache_misses" in
  let hit_rate =
    if hits + stale + misses = 0 then 0.
    else 100. *. float_of_int hits /. float_of_int (hits + stale + misses)
  in
  Printf.printf
    "\n  cache on a %d-name working set over %d rounds (4 shards): %d hits, %d stale, \
     %d misses — hit rate %.1f%%\n"
    working_set rounds hits stale misses hit_rate;
  Printf.printf "  paper-shape check: %s\n"
    (if hit_rate >= 90. then "HOLDS — repeated resolution is answered locally"
     else "VIOLATED — cache hit rate under 90%");
  (* (3) relocation storm, cache on vs off *)
  let storms =
    if smoke then []
    else
      [
        naming_storm_run ~label:"cache on (versioned invalidation)"
          ~ttl:Node.default_config.Node.ns_cache_ttl_us;
        naming_storm_run ~label:"cache off (ttl 0)" ~ttl:0;
      ]
  in
  if storms <> [] then begin
    Printf.printf "\n  relocation storm (2 crash/re-register cycles, client polling):\n\n";
    Bench_util.table
      ~columns:[ "configuration"; "recovery"; "ns lookups"; "hits"; "stale"; "floor raises" ]
      (List.map
         (fun r ->
           [
             r.st_label;
             (if r.st_recovery_us < 0 then "never"
              else Printf.sprintf "%d us" r.st_recovery_us);
             string_of_int r.st_ns_lookups;
             string_of_int r.st_hits;
             string_of_int r.st_stale;
             string_of_int r.st_floor_raises;
           ])
         storms)
  end;
  if not smoke then begin
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n  \"schema\": \"ntcs.bench.naming/1\",\n  \"shards\": 4,\n";
    Buffer.add_string b "  \"lookup_latency_vs_names\": [\n    ";
    Buffer.add_string b
      (String.concat ",\n    "
         (List.map
            (fun (n, s) ->
              Printf.sprintf
                "{\"names\":%d,\"batches\":%d,\"batch\":%d,\"p50_ns\":%.0f,\
                 \"p95_ns\":%.0f,\"p99_ns\":%.0f}"
                n (Ntcs_util.Stats.count s) batch
                (Ntcs_util.Stats.percentile s 50.)
                (Ntcs_util.Stats.percentile s 95.)
                (Ntcs_util.Stats.percentile s 99.))
            latency_rows));
    Buffer.add_string b "\n  ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"cache\": {\"working_set\":%d,\"rounds\":%d,\"hits\":%d,\"stale\":%d,\
          \"misses\":%d,\"hit_rate_pct\":%.1f},\n"
         working_set rounds hits stale misses hit_rate);
    Buffer.add_string b "  \"relocation_storm\": {\n    ";
    Buffer.add_string b
      (String.concat ",\n    "
         (List.map
            (fun r ->
              Printf.sprintf
                "\"%s\": {\"recovery_us\":%d,\"ns_lookups\":%d,\"cache_hits\":%d,\
                 \"cache_stale\":%d,\"floor_raises\":%d}"
                (if r.st_stale + r.st_hits > 0 || r.st_floor_raises > 0 then "cache_on"
                 else "cache_off")
                r.st_recovery_us r.st_ns_lookups r.st_hits r.st_stale r.st_floor_raises)
            storms));
    Buffer.add_string b "\n  },\n";
    Buffer.add_string b
      "  \"note\": \"lookup latency fields are host timings and vary per machine; \
       cache and storm fields are virtual-time/deterministic and do not.\"\n}\n";
    let oc = open_out "BENCH_naming.json" in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf
      "\n  wrote BENCH_naming.json (latency fields vary per machine; cache/storm fields do not)\n"
  end

let naming_full () = naming_bench ~smoke:false ()
let naming_smoke () = naming_bench ~smoke:true ()
