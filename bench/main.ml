(* Experiment driver: regenerates every figure and every measurable claim of
   the paper (see DESIGN.md §5 and EXPERIMENTS.md). Run all experiments with
   no arguments, or name a subset: `dune exec bench/main.exe -- e5 e7`. *)

let experiments =
  [
    ("fig", "Figures 2-1 .. 2-4 (architecture)", Ntcs.Figures.all);
    ("e1", "E1: name-server removal", Experiments.e1_ns_removal);
    ("e2", "E2: resolution latency", Experiments.e2_resolution);
    ("e3", "E3: TAdd purge", Experiments.e3_tadd_purge);
    ("e4", "E4: dynamic reconfiguration", Experiments.e4_reconfig);
    ("e5", "E5: conversion micro-benchmarks", Experiments.e5_conversion);
    ("e6", "E6: adaptive mode selection", Experiments.e6_adaptive);
    ("e7", "E7: internet hops", Experiments.e7_internet);
    ("e8", "E8: recursion scenario", Experiments.e8_recursion);
    ("e9", "E9: NS fault guard ablation", Experiments.e9_ns_bug);
    ("e10", "E10: replicated naming", Experiments.e10_replication);
    ("e11", "E11: URSA end-to-end", Experiments.e11_ursa);
    ("a1", "A1: always-packed ablation", Experiments.a1_always_packed);
    ("a2", "A2: naming-cache ablation", Experiments.a2_no_cache);
    ("s1", "S1: substrate throughput", Experiments.s1_sim_throughput);
    ("obs", "OBS: observability-plane snapshot (writes BENCH_obs.json)",
     Experiments.obs_snapshot);
    ("hot", "HOT: zero-copy hot-path baseline (writes BENCH_hotpath.json)",
     Experiments.hot_full);
    ("hot-smoke", "HOT (smoke): 1-second slice of the hot-path bench",
     Experiments.hot_smoke);
    ("par", "PAR: domain-parallel frames/sec vs domain count (writes BENCH_parallel.json)",
     Experiments.par_full);
    ("par-smoke", "PAR (smoke): 1/2-domain slice of the parallel-world bench",
     Experiments.par_smoke);
    ("naming", "NAMING: sharded naming plane (writes BENCH_naming.json)",
     Experiments.naming_full);
    ("naming-smoke", "NAMING (smoke): sharded naming-plane slice",
     Experiments.naming_smoke);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) experiments
  in
  print_endline "NTCS experiment harness (Zeleznik, ICDCS 1986 reproduction)";
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, run) -> run ()
      | None ->
        Printf.printf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map (fun (n, _, _) -> n) experiments)))
    requested;
  print_endline "\nAll requested experiments complete."
